//! Switch output queues: drop-tail FIFO plus RED and CoDel disciplines,
//! optional ECN marking, and occupancy statistics.
//!
//! The discipline is selected per queue via [`QueueDiscipline`]:
//!
//! - [`QueueDiscipline::DropTail`] — the paper's switches: accept until
//!   the capacity limit, then drop arrivals.
//! - [`QueueDiscipline::Red`] — Random Early Detection (Floyd &
//!   Jacobson 1993): drop/mark arrivals probabilistically from an EWMA
//!   queue estimate, with the classic count-since-last-drop correction
//!   so early events space out evenly. Randomness comes from a seeded
//!   per-queue splitmix64 stream, so runs stay byte-identical.
//! - [`QueueDiscipline::CoDel`] — Controlled Delay (Nichols &
//!   Jacobson 2012): drop at *dequeue* time when the head packet's
//!   sojourn exceeded `target` continuously for `interval`, pacing
//!   further drops by `interval / sqrt(count)`. Entirely deterministic.
//!   Dequeue-time drops surface through [`DropTailQueue::take_sojourn_drops`]
//!   so the engine can account for them.
//!
//! Both AQMs support ECN-style early-mark-as-drop semantics: when `ecn`
//! is set and the packet is ECN-capable, the discipline CE-marks instead
//! of dropping and the packet is still delivered.

use std::collections::VecDeque;

use crate::hash::FastHashSet;
use crate::packet::{Packet, Payload};
use crate::time::{Dur, SimTime};
use crate::units::QueueCapacity;

/// Random Early Detection parameters (Floyd & Jacobson 1993).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RedConfig {
    /// Average queue length below which every packet is accepted.
    pub min_th: f64,
    /// Average queue length above which every packet is dropped/marked.
    pub max_th: f64,
    /// Drop/mark probability at `max_th`.
    pub max_p: f64,
    /// EWMA weight for the average queue estimate.
    pub wq: f64,
    /// Mark ECN-capable packets instead of dropping them.
    pub ecn: bool,
    /// Seed for the queue's deterministic PRNG.
    pub seed: u64,
}

impl Default for RedConfig {
    /// Classic gentle-ish defaults: min 15, max 45, max_p 0.1, wq 0.002.
    fn default() -> Self {
        RedConfig {
            min_th: 15.0,
            max_th: 45.0,
            max_p: 0.1,
            wq: 0.002,
            ecn: false,
            seed: 0x9e37_79b9,
        }
    }
}

impl RedConfig {
    /// One EWMA step of the average-queue estimate:
    /// `avg' = (1 - wq)·avg + wq·len`.
    pub fn ewma(&self, avg: f64, len: usize) -> f64 {
        (1.0 - self.wq) * avg + self.wq * len as f64
    }

    /// The base drop probability `p_b`: 0 below `min_th`, 1 at or above
    /// `max_th`, linear interpolation toward `max_p` in between.
    pub fn base_probability(&self, avg: f64) -> f64 {
        if avg <= self.min_th {
            0.0
        } else if avg >= self.max_th {
            1.0
        } else {
            self.max_p * (avg - self.min_th) / (self.max_th - self.min_th)
        }
    }

    /// The per-packet drop probability with the count correction:
    /// `p_a = p_b / (1 - count·p_b)`, clamped to `[0, 1]`, where `count`
    /// packets were accepted since the last early drop/mark. The
    /// correction turns the geometric inter-drop gaps of raw Bernoulli
    /// trials into (roughly) uniform spacing, guaranteeing a drop within
    /// `1/p_b` packets.
    pub fn drop_probability(&self, avg: f64, count: u64) -> f64 {
        let pb = self.base_probability(avg);
        if pb <= 0.0 {
            return 0.0;
        }
        let denom = 1.0 - count as f64 * pb;
        if denom <= pb {
            1.0
        } else {
            (pb / denom).min(1.0)
        }
    }
}

/// Controlled Delay (CoDel) parameters (Nichols & Jacobson 2012).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoDelConfig {
    /// Acceptable standing sojourn time.
    pub target: Dur,
    /// How long the sojourn must stay above `target` before dropping
    /// starts; also the base of the drop-pacing control law.
    pub interval: Dur,
    /// Mark ECN-capable packets instead of dropping them.
    pub ecn: bool,
}

impl Default for CoDelConfig {
    /// The RFC 8289 internet defaults: target 5 ms, interval 100 ms.
    fn default() -> Self {
        CoDelConfig {
            target: Dur::from_millis(5),
            interval: Dur::from_millis(100),
            ecn: false,
        }
    }
}

impl CoDelConfig {
    /// Parameters rescaled to data-center RTTs (hundreds of µs): target
    /// 50 µs, interval 1 ms — the same 5% ratio as the RFC defaults.
    pub fn datacenter() -> Self {
        CoDelConfig {
            target: Dur::from_micros(50),
            interval: Dur::from_millis(1),
            ecn: false,
        }
    }
}

/// Queue management discipline of one switch output queue.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueueDiscipline {
    /// Plain drop-tail (the paper's switches).
    DropTail,
    /// Random Early Detection, with a deterministic seeded PRNG so runs
    /// stay reproducible.
    Red(RedConfig),
    /// Controlled Delay: sojourn-time dropping at dequeue, fully
    /// deterministic.
    CoDel(CoDelConfig),
}

/// Former name of [`QueueDiscipline`], kept for existing call sites.
pub type Aqm = QueueDiscipline;

/// Configuration of a switch output queue.
#[derive(Clone, Copy, Debug)]
pub struct QueueConfig {
    /// Maximum occupancy; arrivals beyond it are dropped (drop-tail).
    pub capacity: QueueCapacity,
    /// Instantaneous-queue ECN marking threshold in packets, as used by
    /// DCTCP: an arriving ECN-capable packet is marked CE when the queue
    /// length (including itself) exceeds this threshold. `None` disables
    /// marking.
    pub ecn_threshold: Option<usize>,
    /// Queue management discipline applied before the capacity check.
    pub aqm: QueueDiscipline,
}

impl QueueConfig {
    /// A drop-tail queue holding at most `pkts` packets, no ECN.
    pub fn drop_tail(pkts: usize) -> Self {
        QueueConfig {
            capacity: QueueCapacity::Packets(pkts),
            ecn_threshold: None,
            aqm: QueueDiscipline::DropTail,
        }
    }

    /// Enables ECN marking above `pkts` queued packets.
    pub fn with_ecn_threshold(mut self, pkts: usize) -> Self {
        self.ecn_threshold = Some(pkts);
        self
    }

    /// Applies RED instead of pure drop-tail (the capacity limit still
    /// backstops the queue).
    pub fn with_red(mut self, red: RedConfig) -> Self {
        self.aqm = QueueDiscipline::Red(red);
        self
    }

    /// Applies CoDel instead of pure drop-tail (the capacity limit still
    /// backstops the queue).
    pub fn with_codel(mut self, codel: CoDelConfig) -> Self {
        self.aqm = QueueDiscipline::CoDel(codel);
        self
    }

    /// Selects the queue discipline.
    pub fn with_discipline(mut self, aqm: QueueDiscipline) -> Self {
        self.aqm = aqm;
        self
    }
}

impl Default for QueueConfig {
    /// 100 packets, the buffer size used throughout the paper's 1 Gbps
    /// scenarios.
    fn default() -> Self {
        QueueConfig::drop_tail(100)
    }
}

/// Running statistics for one queue.
///
/// The occupancy integral enables the paper's *average queue length* metric
/// (Fig. 9(b)): `AQL = integral / observed span`.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueueStats {
    /// Packets accepted into the queue (or straight into the transmitter).
    pub enqueued: u64,
    /// Packets dropped because the queue was full.
    pub dropped: u64,
    /// Packets handed to the transmitter.
    pub dequeued: u64,
    /// Bytes handed to the transmitter.
    pub dequeued_bytes: u64,
    /// Packets marked CE on arrival.
    pub ecn_marked: u64,
    /// Packets dropped or marked early by RED (subset of `dropped` /
    /// `ecn_marked`).
    pub red_events: u64,
    /// Packets dropped or marked by CoDel at dequeue time (subset of
    /// `dropped` / `ecn_marked`).
    pub sojourn_events: u64,
    /// Highest queue length seen, in packets.
    pub max_len: usize,
    /// Sum of (queue length x time) in packet-nanoseconds.
    pub occupancy_integral: u128,
}

impl QueueStats {
    /// Average queue length in packets over `span`.
    ///
    /// Returns 0 for an empty span.
    pub fn average_len(&self, span: Dur) -> f64 {
        if span == Dur::ZERO {
            return 0.0;
        }
        self.occupancy_integral as f64 / span.as_nanos() as f64
    }
}

/// A point in a recorded queue-length time series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueueSample {
    /// When the sample was taken.
    pub at: SimTime,
    /// Queue length in packets at that instant.
    pub len: usize,
}

/// A packet CoDel dropped at dequeue time, with its measured sojourn.
/// Collected by the queue and drained by the engine via
/// [`DropTailQueue::take_sojourn_drops`] so drop accounting and monitor
/// events stay exact.
#[derive(Clone, Debug)]
pub struct SojournDrop<P> {
    /// The dropped packet.
    pub pkt: Packet<P>,
    /// How long it sat in the queue before the drop decision.
    pub sojourn: Dur,
}

/// A FIFO queue with a configurable discipline (drop-tail backstop plus
/// optional RED or CoDel), statistics, and an optional length recorder.
#[derive(Debug)]
pub struct DropTailQueue<P> {
    config: QueueConfig,
    /// Queued packets with their enqueue timestamps (CoDel sojourn).
    items: VecDeque<(SimTime, Packet<P>)>,
    bytes: u64,
    stats: QueueStats,
    last_change: SimTime,
    recorder: Option<Vec<QueueSample>>,
    /// Fault injection: 0-based indices (in arrival order) of packets to
    /// drop deterministically, regardless of occupancy.
    forced_drops: FastHashSet<u64>,
    /// Fault injection: packets that may still be admitted beyond the
    /// configured capacity.
    overadmit_budget: u64,
    arrivals: u64,
    /// RED state: EWMA of the queue length, packets accepted since the
    /// last early event, and the PRNG stream position.
    red_avg: f64,
    red_count: u64,
    red_rng: u64,
    /// CoDel state (RFC 8289): when the sojourn first stayed above
    /// target, whether we are in the dropping state, the next scheduled
    /// drop time, and the drop counts driving the control law.
    codel_first_above: Option<SimTime>,
    codel_dropping: bool,
    codel_drop_next: SimTime,
    codel_count: u32,
    codel_last_count: u32,
    /// Packets CoDel dropped during recent dequeues, awaiting engine
    /// accounting. Empty unless the discipline is CoDel.
    sojourn_drops: Vec<SojournDrop<P>>,
}

/// Outcome of offering a packet to a queue.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EnqueueOutcome {
    /// Packet accepted.
    Accepted,
    /// Packet dropped (queue full, or an injected forced drop).
    Dropped,
    /// Packet dropped early by the AQM below capacity, carrying the
    /// average-queue estimate that drove the decision.
    EarlyDropped {
        /// The EWMA queue estimate at the drop decision.
        avg_queue: f64,
    },
}

impl<P: Payload> DropTailQueue<P> {
    /// Creates an empty queue.
    pub fn new(config: QueueConfig) -> Self {
        DropTailQueue {
            config,
            items: VecDeque::new(),
            bytes: 0,
            stats: QueueStats::default(),
            last_change: SimTime::ZERO,
            recorder: None,
            forced_drops: FastHashSet::default(),
            overadmit_budget: 0,
            arrivals: 0,
            red_avg: 0.0,
            red_count: 0,
            red_rng: match config.aqm {
                QueueDiscipline::Red(r) => r.seed,
                QueueDiscipline::DropTail | QueueDiscipline::CoDel(_) => 0,
            },
            codel_first_above: None,
            codel_dropping: false,
            codel_drop_next: SimTime::ZERO,
            codel_count: 0,
            codel_last_count: 0,
            sojourn_drops: Vec::new(),
        }
    }

    /// Fault injection: deterministically drop the packets whose 0-based
    /// arrival index (counting every packet offered to this queue) is in
    /// `indices`, regardless of occupancy. Used to construct exact loss
    /// patterns in tests — e.g. "lose the whole tail of a window" to
    /// force an RTO rather than a fast retransmit.
    pub fn inject_drops(&mut self, indices: impl IntoIterator<Item = u64>) {
        self.forced_drops.extend(indices);
    }

    /// Fault injection: lets the queue admit up to `extra` packets beyond
    /// its configured capacity (each over-capacity admission consumes one
    /// unit of the budget). This deliberately *breaks* the queue-bound
    /// invariant; it exists so the invariant monitors can be shown to
    /// catch a real over-admission, and has no other legitimate use.
    pub fn inject_overadmit(&mut self, extra: u64) {
        self.overadmit_budget += extra;
    }

    /// The queue's configuration.
    pub fn config(&self) -> QueueConfig {
        self.config
    }

    /// Starts recording a (time, length) sample on every length change.
    pub fn enable_recording(&mut self) {
        if self.recorder.is_none() {
            self.recorder = Some(vec![QueueSample {
                at: SimTime::ZERO,
                len: self.items.len(),
            }]);
        }
    }

    /// The recorded length series, if recording was enabled.
    pub fn samples(&self) -> Option<&[QueueSample]> {
        self.recorder.as_deref()
    }

    /// Current length in packets.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue holds no packets.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Current occupancy in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Statistics accumulated so far. The occupancy integral includes time
    /// up to the last enqueue/dequeue only; call [`Self::settle`] first to
    /// extend it to a chosen end time.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Extends the occupancy integral to `now` without changing contents.
    pub fn settle(&mut self, now: SimTime) {
        self.advance_clock(now);
    }

    /// Offers a packet. On acceptance the packet may be CE-marked per the
    /// RED/ECN configuration. Statistics are updated either way.
    pub fn enqueue(&mut self, now: SimTime, mut pkt: Packet<P>) -> EnqueueOutcome {
        self.advance_clock(now);
        let arrival = self.arrivals;
        self.arrivals += 1;
        if !self.forced_drops.is_empty() && self.forced_drops.remove(&arrival) {
            self.stats.dropped += 1;
            return EnqueueOutcome::Dropped;
        }
        if !self
            .config
            .capacity
            .admits(self.items.len(), self.bytes, pkt.size)
        {
            if self.overadmit_budget > 0 {
                // Injected fault: admit beyond capacity (skipping the AQM
                // and ECN steps) so the queue-bound monitor has something
                // real to catch.
                self.overadmit_budget -= 1;
                self.bytes += pkt.size as u64;
                self.items.push_back((now, pkt));
                self.stats.enqueued += 1;
                self.stats.max_len = self.stats.max_len.max(self.items.len());
                self.record(now);
                return EnqueueOutcome::Accepted;
            }
            self.stats.dropped += 1;
            return EnqueueOutcome::Dropped;
        }
        if let QueueDiscipline::Red(red) = self.config.aqm {
            self.red_avg = red.ewma(self.red_avg, self.items.len());
            if self.red_avg <= red.min_th {
                self.red_count = 0;
            } else {
                let p = red.drop_probability(self.red_avg, self.red_count);
                // Deterministic PRNG: splitmix64 stream.
                self.red_rng = self.red_rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = self.red_rng;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                let u = (z ^ (z >> 31)) as f64 / u64::MAX as f64;
                if u < p {
                    self.red_count = 0;
                    self.stats.red_events += 1;
                    if red.ecn && pkt.payload.ecn_capable() {
                        pkt.payload.mark_ce();
                        self.stats.ecn_marked += 1;
                        // Marked packets are still enqueued below.
                    } else {
                        self.stats.dropped += 1;
                        return EnqueueOutcome::EarlyDropped {
                            avg_queue: self.red_avg,
                        };
                    }
                } else {
                    self.red_count += 1;
                }
            }
        }
        if let Some(thresh) = self.config.ecn_threshold {
            if pkt.payload.ecn_capable() && self.items.len() + 1 > thresh {
                pkt.payload.mark_ce();
                self.stats.ecn_marked += 1;
            }
        }
        self.bytes += pkt.size as u64;
        self.items.push_back((now, pkt));
        self.stats.enqueued += 1;
        self.stats.max_len = self.stats.max_len.max(self.items.len());
        self.record(now);
        EnqueueOutcome::Accepted
    }

    /// Removes the packet at the head, if any. Under CoDel this may first
    /// drop head packets whose sojourn stayed above target; the dropped
    /// packets wait in [`Self::take_sojourn_drops`] for engine accounting.
    /// The last remaining packet is never sojourn-dropped, so a dequeue
    /// directly after a successful enqueue always yields a packet.
    pub fn dequeue(&mut self, now: SimTime) -> Option<Packet<P>> {
        self.advance_clock(now);
        let pkt = match self.config.aqm {
            QueueDiscipline::CoDel(codel) => self.codel_dequeue(now, codel),
            QueueDiscipline::DropTail | QueueDiscipline::Red(_) => self.pop_head().map(|(_, p)| p),
        };
        let pkt = pkt?;
        self.stats.dequeued += 1;
        self.stats.dequeued_bytes += pkt.size as u64;
        self.record(now);
        Some(pkt)
    }

    /// Drains the packets CoDel dropped during recent dequeues. Always
    /// empty for drop-tail and RED queues.
    pub fn take_sojourn_drops(&mut self) -> Vec<SojournDrop<P>> {
        std::mem::take(&mut self.sojourn_drops)
    }

    /// Whether any sojourn drops await [`Self::take_sojourn_drops`].
    pub fn has_sojourn_drops(&self) -> bool {
        !self.sojourn_drops.is_empty()
    }

    fn pop_head(&mut self) -> Option<(SimTime, Packet<P>)> {
        let (enq, pkt) = self.items.pop_front()?;
        self.bytes -= pkt.size as u64;
        Some((enq, pkt))
    }

    /// One CoDel head pop: returns the head (if any) and whether the
    /// sojourn-time state machine permits dropping it.
    fn codel_pop(
        &mut self,
        now: SimTime,
        codel: CoDelConfig,
    ) -> (Option<(SimTime, Packet<P>)>, bool) {
        let Some((enq, pkt)) = self.pop_head() else {
            self.codel_first_above = None;
            return (None, false);
        };
        let sojourn = now.saturating_since(enq);
        // Never drop the last packet: an empty queue would idle the link
        // (RFC 8289's one-MTU floor), and it guarantees that a dequeue
        // directly following an enqueue hands the packet out.
        if sojourn < codel.target || self.items.is_empty() {
            self.codel_first_above = None;
            return (Some((enq, pkt)), false);
        }
        match self.codel_first_above {
            None => {
                self.codel_first_above = Some(now + codel.interval);
                (Some((enq, pkt)), false)
            }
            Some(first) => (Some((enq, pkt)), now >= first),
        }
    }

    /// Records one CoDel drop-or-mark on `(enq, pkt)`. Returns the packet
    /// when it was CE-marked (and must still be delivered), `None` when it
    /// was dropped.
    fn codel_event(
        &mut self,
        now: SimTime,
        codel: CoDelConfig,
        enq: SimTime,
        mut pkt: Packet<P>,
    ) -> Option<(SimTime, Packet<P>)> {
        self.stats.sojourn_events += 1;
        if codel.ecn && pkt.payload.ecn_capable() {
            pkt.payload.mark_ce();
            self.stats.ecn_marked += 1;
            return Some((enq, pkt));
        }
        self.stats.dropped += 1;
        self.sojourn_drops.push(SojournDrop {
            pkt,
            sojourn: now.saturating_since(enq),
        });
        None
    }

    /// The RFC 8289 dequeue state machine.
    fn codel_dequeue(&mut self, now: SimTime, codel: CoDelConfig) -> Option<Packet<P>> {
        let (mut head, mut ok_to_drop) = self.codel_pop(now, codel);
        if self.codel_dropping {
            if !ok_to_drop {
                self.codel_dropping = false;
            } else {
                while self.codel_dropping && now >= self.codel_drop_next {
                    let (enq, pkt) = head.take()?;
                    self.codel_count += 1;
                    match self.codel_event(now, codel, enq, pkt) {
                        Some(marked) => {
                            // Marked instead of dropped: pace the next
                            // event and deliver the marked packet.
                            self.codel_drop_next = codel_control_law(
                                self.codel_drop_next,
                                codel.interval,
                                self.codel_count,
                            );
                            head = Some(marked);
                            break;
                        }
                        None => {
                            let (next, next_ok) = self.codel_pop(now, codel);
                            head = next;
                            ok_to_drop = next_ok;
                            if !ok_to_drop {
                                self.codel_dropping = false;
                            } else {
                                self.codel_drop_next = codel_control_law(
                                    self.codel_drop_next,
                                    codel.interval,
                                    self.codel_count,
                                );
                            }
                        }
                    }
                }
            }
        } else if ok_to_drop {
            // Enter the dropping state with one drop/mark.
            let (enq, pkt) = head.take()?;
            if let Some(marked) = self.codel_event(now, codel, enq, pkt) {
                head = Some(marked);
            } else {
                let (next, _) = self.codel_pop(now, codel);
                head = next;
            }
            self.codel_dropping = true;
            // Resume at a higher drop rate when we were dropping
            // recently (within 16 intervals), per the RFC.
            let delta = self.codel_count.saturating_sub(self.codel_last_count);
            let recently = now.saturating_since(self.codel_drop_next)
                < Dur::from_nanos(16 * codel.interval.as_nanos());
            self.codel_count = if delta > 1 && recently { delta } else { 1 };
            self.codel_drop_next = codel_control_law(now, codel.interval, self.codel_count);
            self.codel_last_count = self.codel_count;
        }
        head.map(|(_, p)| p)
    }

    fn advance_clock(&mut self, now: SimTime) {
        let span = now.saturating_since(self.last_change);
        self.stats.occupancy_integral += self.items.len() as u128 * span.as_nanos() as u128;
        if now > self.last_change {
            self.last_change = now;
        }
    }

    fn record(&mut self, now: SimTime) {
        if let Some(rec) = &mut self.recorder {
            rec.push(QueueSample {
                at: now,
                len: self.items.len(),
            });
        }
    }
}

/// CoDel's drop-pacing control law: the next drop comes
/// `interval / sqrt(count)` after `t`.
fn codel_control_law(t: SimTime, interval: Dur, count: u32) -> SimTime {
    let step = (interval.as_nanos() as f64 / f64::from(count.max(1)).sqrt()).max(1.0) as u64;
    t + Dur::from_nanos(step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, NodeId, TagPayload};

    fn pkt(size: u32) -> Packet<TagPayload> {
        Packet::new(NodeId(0), NodeId(1), FlowId(0), size, TagPayload(0))
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    fn is_drop(outcome: EnqueueOutcome) -> bool {
        !matches!(outcome, EnqueueOutcome::Accepted)
    }

    #[test]
    fn fifo_order() {
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(10));
        for i in 0..3 {
            let mut p = pkt(100);
            p.payload = TagPayload(i);
            assert_eq!(q.enqueue(t(0), p), EnqueueOutcome::Accepted);
        }
        for i in 0..3 {
            assert_eq!(q.dequeue(t(1)).unwrap().payload, TagPayload(i));
        }
        assert!(q.dequeue(t(2)).is_none());
    }

    #[test]
    fn drop_tail_on_packet_capacity() {
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(2));
        assert_eq!(q.enqueue(t(0), pkt(100)), EnqueueOutcome::Accepted);
        assert_eq!(q.enqueue(t(0), pkt(100)), EnqueueOutcome::Accepted);
        assert_eq!(q.enqueue(t(0), pkt(100)), EnqueueOutcome::Dropped);
        assert_eq!(q.stats().dropped, 1);
        assert_eq!(q.stats().enqueued, 2);
        assert_eq!(q.stats().max_len, 2);
    }

    #[test]
    fn drop_tail_on_byte_capacity() {
        let mut q = DropTailQueue::new(QueueConfig {
            capacity: QueueCapacity::Bytes(250),
            ecn_threshold: None,
            aqm: QueueDiscipline::DropTail,
        });
        assert_eq!(q.enqueue(t(0), pkt(100)), EnqueueOutcome::Accepted);
        assert_eq!(q.enqueue(t(0), pkt(100)), EnqueueOutcome::Accepted);
        assert_eq!(q.enqueue(t(0), pkt(100)), EnqueueOutcome::Dropped);
        assert_eq!(q.bytes(), 200);
    }

    #[test]
    fn occupancy_integral_accumulates() {
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(10));
        q.enqueue(t(0), pkt(100));
        q.enqueue(t(10), pkt(100)); // 1 pkt for 10us
        q.dequeue(t(30)); // 2 pkts for 20us
        q.settle(t(40)); // 1 pkt for 10us
        let integral = q.stats().occupancy_integral;
        assert_eq!(integral, (10_000 + 2 * 20_000 + 10_000) as u128);
        let avg = q.stats().average_len(Dur::from_micros(40));
        assert!((avg - 1.5).abs() < 1e-9);
    }

    #[test]
    fn average_len_zero_span() {
        let q: DropTailQueue<TagPayload> = DropTailQueue::new(QueueConfig::default());
        assert_eq!(q.stats().average_len(Dur::ZERO), 0.0);
    }

    #[test]
    fn recording_captures_changes() {
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(10));
        q.enable_recording();
        q.enqueue(t(1), pkt(100));
        q.enqueue(t(2), pkt(100));
        q.dequeue(t(3));
        let s = q.samples().unwrap();
        assert_eq!(
            s,
            &[
                QueueSample { at: t(0), len: 0 },
                QueueSample { at: t(1), len: 1 },
                QueueSample { at: t(2), len: 2 },
                QueueSample { at: t(3), len: 1 },
            ]
        );
    }

    #[derive(Clone, Copy, Debug, Default)]
    struct EcnPayload {
        ce: bool,
    }
    impl Payload for EcnPayload {
        fn ecn_capable(&self) -> bool {
            true
        }
        fn mark_ce(&mut self) {
            self.ce = true;
        }
        fn is_ce(&self) -> bool {
            self.ce
        }
    }

    #[test]
    fn ecn_marks_above_threshold() {
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(10).with_ecn_threshold(1));
        let mk = || Packet::new(NodeId(0), NodeId(1), FlowId(0), 100, EcnPayload::default());
        q.enqueue(t(0), mk()); // len 1, not > 1: unmarked
        q.enqueue(t(0), mk()); // len 2 > 1: marked
        assert!(!q.dequeue(t(1)).unwrap().payload.is_ce());
        assert!(q.dequeue(t(1)).unwrap().payload.is_ce());
        assert_eq!(q.stats().ecn_marked, 1);
    }

    #[test]
    fn red_drops_early_and_deterministically() {
        let red = RedConfig {
            min_th: 2.0,
            max_th: 6.0,
            max_p: 1.0,
            wq: 0.5, // fast-moving average for the test
            ecn: false,
            seed: 7,
        };
        let run = || {
            let mut q = DropTailQueue::new(QueueConfig::drop_tail(100).with_red(red));
            for _ in 0..50 {
                q.enqueue(t(0), pkt(100));
            }
            (q.stats().dropped, q.stats().red_events, q.len())
        };
        let (dropped, red_events, len) = run();
        assert!(dropped > 0, "RED must drop before the 100-packet limit");
        assert_eq!(dropped, red_events);
        assert!(len < 50);
        assert_eq!(run(), (dropped, red_events, len), "deterministic");
    }

    #[test]
    fn red_early_drop_reports_the_average() {
        let red = RedConfig {
            min_th: 1.0,
            max_th: 2.0,
            max_p: 1.0,
            wq: 1.0, // average == instantaneous length
            ecn: false,
            seed: 1,
        };
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(100).with_red(red));
        let mut early = None;
        for _ in 0..10 {
            if let EnqueueOutcome::EarlyDropped { avg_queue } = q.enqueue(t(0), pkt(100)) {
                early = Some(avg_queue);
                break;
            }
        }
        let avg = early.expect("RED with max_p=1 above max_th must early-drop");
        assert!(avg >= red.max_th, "early drop above max_th, got avg {avg}");
    }

    #[test]
    fn red_ecn_marks_instead_of_dropping() {
        let red = RedConfig {
            min_th: 1.0,
            max_th: 3.0,
            max_p: 1.0,
            wq: 0.9,
            ecn: true,
            seed: 3,
        };
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(100).with_red(red));
        let mk = || Packet::new(NodeId(0), NodeId(1), FlowId(0), 100, EcnPayload::default());
        for _ in 0..30 {
            q.enqueue(t(0), mk());
        }
        assert_eq!(q.stats().dropped, 0, "ECN-capable traffic is marked");
        assert!(q.stats().ecn_marked > 0);
        assert_eq!(q.len(), 30);
    }

    #[test]
    fn red_below_min_th_never_drops() {
        let red = RedConfig::default();
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(100).with_red(red));
        for _ in 0..10 {
            q.enqueue(t(0), pkt(100));
            q.dequeue(t(1));
        }
        assert_eq!(q.stats().dropped, 0);
        assert_eq!(q.stats().red_events, 0);
    }

    /// Table-driven known answers for the min/max-threshold interpolation
    /// of `p_b` (Floyd & Jacobson Eq. 1-2).
    #[test]
    fn red_base_probability_known_answers() {
        let red = RedConfig {
            min_th: 10.0,
            max_th: 30.0,
            max_p: 0.2,
            ..RedConfig::default()
        };
        let table: &[(f64, f64)] = &[
            (0.0, 0.0),   // empty queue
            (10.0, 0.0),  // exactly min_th: still accept-all
            (15.0, 0.05), // quarter of the band
            (20.0, 0.1),  // midpoint: max_p / 2
            (25.0, 0.15), // three quarters
            (30.0, 1.0),  // at max_th: hard drop region
            (99.0, 1.0),  // far above
        ];
        for &(avg, want) in table {
            let got = red.base_probability(avg);
            assert!(
                (got - want).abs() < 1e-12,
                "p_b({avg}) = {got}, want {want}"
            );
        }
    }

    /// Known answers for one EWMA averaging step.
    #[test]
    fn red_ewma_known_answers() {
        let red = RedConfig {
            wq: 0.002,
            ..RedConfig::default()
        };
        let table: &[(f64, usize, f64)] = &[
            (0.0, 0, 0.0),
            (10.0, 20, 10.02), // 0.998*10 + 0.002*20
            (10.0, 10, 10.0),  // fixed point
            (100.0, 0, 99.8),  // decay toward an empty queue
        ];
        for &(avg, len, want) in table {
            let got = red.ewma(avg, len);
            assert!(
                (got - want).abs() < 1e-9,
                "ewma({avg}, {len}) = {got}, want {want}"
            );
        }
        let fast = RedConfig {
            wq: 1.0,
            ..RedConfig::default()
        };
        assert_eq!(
            fast.ewma(3.0, 7),
            7.0,
            "wq=1 tracks the instantaneous length"
        );
    }

    /// Known answers for the count-since-last-drop correction: with
    /// `p_b = 1/4` the corrected probability climbs 1/4, 1/3, 1/2, 1 —
    /// a drop is certain within `1/p_b` packets (even spacing instead of
    /// the geometric tail of raw Bernoulli trials).
    #[test]
    fn red_count_correction_known_answers() {
        let red = RedConfig {
            min_th: 0.0,
            max_th: 40.0,
            max_p: 1.0,
            ..RedConfig::default()
        };
        let avg = 10.0; // p_b = 1.0 * 10/40 = 0.25
        assert!((red.base_probability(avg) - 0.25).abs() < 1e-12);
        let table: &[(u64, f64)] = &[
            (0, 0.25),
            (1, 1.0 / 3.0),
            (2, 0.5),
            (3, 1.0), // 1 - 3*0.25 = 0.25 = p_b: certain drop
            (9, 1.0), // far past the clamp
        ];
        for &(count, want) in table {
            let got = red.drop_probability(avg, count);
            assert!(
                (got - want).abs() < 1e-12,
                "p_a(count={count}) = {got}, want {want}"
            );
        }
    }

    /// The count correction resets after every early event: observed
    /// inter-drop gaps under a constant p_b are bounded by 1/p_b.
    #[test]
    fn red_count_spacing_bounds_inter_drop_gaps() {
        let red = RedConfig {
            min_th: 1.0,
            max_th: 41.0,
            max_p: 1.0,
            wq: 1.0, // average tracks the instantaneous length exactly
            ecn: false,
            seed: 11,
        };
        // Hold the queue at a constant length of 11 packets: every
        // arrival then sees avg = 10 after the dequeue, i.e.
        // p_b = (10 - 1) / 40 = 0.225, so the count correction reaches
        // certainty (1 - 4·p_b < p_b) after 4 accepted packets.
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(100).with_red(red));
        while q.len() < 11 {
            let _ = q.enqueue(t(0), pkt(100)); // fill may early-drop; retry
        }
        let mut gap = 0u64;
        let mut max_gap = 0u64;
        let mut drops = 0u64;
        for _ in 0..400 {
            q.dequeue(t(1));
            match q.enqueue(t(1), pkt(100)) {
                EnqueueOutcome::Accepted => gap += 1,
                _ => {
                    max_gap = max_gap.max(gap);
                    gap = 0;
                    drops += 1;
                }
            }
            while q.len() < 11 {
                let _ = q.enqueue(t(1), pkt(100)); // refill to the fixed length
            }
        }
        assert!(drops > 10, "expected steady early drops, got {drops}");
        assert!(
            max_gap <= 4,
            "count correction guarantees a drop within 4 accepted packets \
             at p_b = 0.225, saw a gap of {max_gap}"
        );
    }

    #[test]
    fn forced_drops_hit_exact_arrivals() {
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(10));
        q.inject_drops([1, 3]);
        let mut kept = Vec::new();
        for i in 0..5 {
            let mut p = pkt(100);
            p.payload = TagPayload(i);
            if q.enqueue(t(0), p) == EnqueueOutcome::Accepted {
                kept.push(i);
            }
        }
        assert_eq!(kept, vec![0, 2, 4]);
        assert_eq!(q.stats().dropped, 2);
        // Injected indices are consumed: re-offering does not drop again.
        assert_eq!(q.enqueue(t(1), pkt(100)), EnqueueOutcome::Accepted);
    }

    #[test]
    fn non_ect_packets_never_marked() {
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(10).with_ecn_threshold(0));
        q.enqueue(t(0), pkt(100));
        assert_eq!(q.stats().ecn_marked, 0);
        assert!(!q.dequeue(t(1)).unwrap().payload.is_ce());
    }

    fn codel_cfg(target_us: u64, interval_us: u64) -> CoDelConfig {
        CoDelConfig {
            target: Dur::from_micros(target_us),
            interval: Dur::from_micros(interval_us),
            ecn: false,
        }
    }

    #[test]
    fn codel_below_target_never_drops() {
        let mut q =
            DropTailQueue::new(QueueConfig::drop_tail(100).with_codel(codel_cfg(100, 1000)));
        for i in 0..50u64 {
            q.enqueue(t(i), pkt(100));
            // Dequeue 50us later: sojourn 50us < 100us target.
            assert!(q.dequeue(t(i) + Dur::from_micros(50)).is_some());
        }
        assert_eq!(q.stats().dropped, 0);
        assert_eq!(q.stats().sojourn_events, 0);
        assert!(!q.has_sojourn_drops());
    }

    #[test]
    fn codel_drops_after_sustained_sojourn_above_target() {
        let mut q =
            DropTailQueue::new(QueueConfig::drop_tail(1000).with_codel(codel_cfg(100, 1000)));
        // Build a standing queue at t=0, then dequeue slowly: every head
        // has a sojourn far above target for far longer than interval.
        for _ in 0..200 {
            q.enqueue(t(0), pkt(100));
        }
        let mut delivered = 0u64;
        for i in 0..200u64 {
            // 500us apart, starting at 2ms: sojourn >= 2ms >> 100us.
            if q.dequeue(t(2_000 + i * 500)).is_some() {
                delivered += 1;
            }
            if q.is_empty() {
                break;
            }
        }
        let stats = q.stats();
        assert!(stats.sojourn_events > 0, "CoDel must engage");
        assert_eq!(stats.sojourn_events, stats.dropped);
        assert_eq!(stats.dequeued, delivered);
        assert_eq!(
            stats.enqueued,
            stats.dequeued + stats.dropped + q.len() as u64
        );
        let drops = q.take_sojourn_drops();
        assert_eq!(drops.len() as u64, stats.dropped);
        assert!(drops.iter().all(|d| d.sojourn >= Dur::from_micros(100)));
        assert!(!q.has_sojourn_drops(), "drain empties the buffer");
    }

    #[test]
    fn codel_is_deterministic() {
        let run = || {
            let mut q =
                DropTailQueue::new(QueueConfig::drop_tail(500).with_codel(codel_cfg(50, 500)));
            for i in 0..300u64 {
                q.enqueue(t(i * 2), pkt(100));
                if i % 3 == 0 {
                    q.dequeue(t(i * 2 + 1));
                }
            }
            // Drain.
            let mut n = 0;
            let mut when = 700u64;
            while !q.is_empty() {
                if q.dequeue(t(when)).is_some() {
                    n += 1;
                }
                when += 30;
            }
            let s = q.stats();
            (s.dropped, s.sojourn_events, s.dequeued, n)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn codel_never_drops_the_last_packet() {
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(10).with_codel(codel_cfg(1, 1)));
        q.enqueue(t(0), pkt(100));
        // Massive sojourn, but it is the only packet: must be delivered.
        assert!(q.dequeue(t(1_000_000)).is_some());
        assert_eq!(q.stats().dropped, 0);
    }

    #[test]
    fn codel_ecn_marks_instead_of_dropping() {
        let codel = CoDelConfig {
            ecn: true,
            ..codel_cfg(100, 1000)
        };
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(1000).with_codel(codel));
        let mk = || Packet::new(NodeId(0), NodeId(1), FlowId(0), 100, EcnPayload::default());
        for _ in 0..100 {
            q.enqueue(t(0), mk());
        }
        let mut marked = 0u64;
        for i in 0..100u64 {
            if let Some(p) = q.dequeue(t(2_000 + i * 500)) {
                if p.payload.is_ce() {
                    marked += 1;
                }
            }
            if q.is_empty() {
                break;
            }
        }
        let stats = q.stats();
        assert!(stats.sojourn_events > 0, "CoDel must engage");
        assert_eq!(stats.dropped, 0, "ECN-capable traffic is marked");
        assert_eq!(stats.ecn_marked, stats.sojourn_events);
        assert_eq!(marked, stats.ecn_marked);
        assert!(!q.has_sojourn_drops());
    }

    #[test]
    fn codel_control_law_paces_by_inverse_sqrt() {
        let i = Dur::from_micros(1000);
        let t0 = SimTime::from_nanos(0);
        assert_eq!(codel_control_law(t0, i, 1), SimTime::from_nanos(1_000_000));
        assert_eq!(codel_control_law(t0, i, 4), SimTime::from_nanos(500_000));
        assert_eq!(codel_control_law(t0, i, 100), SimTime::from_nanos(100_000));
    }

    #[test]
    fn discipline_selection_via_config() {
        let qc = QueueConfig::drop_tail(10)
            .with_discipline(QueueDiscipline::CoDel(CoDelConfig::datacenter()));
        assert!(matches!(qc.aqm, QueueDiscipline::CoDel(_)));
        let qc = QueueConfig::drop_tail(10).with_discipline(QueueDiscipline::DropTail);
        assert!(matches!(qc.aqm, QueueDiscipline::DropTail));
    }

    #[test]
    fn early_drop_counts_as_drop_outcome() {
        let red = RedConfig {
            min_th: 0.5,
            max_th: 1.0,
            max_p: 1.0,
            wq: 1.0,
            ecn: false,
            seed: 2,
        };
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(100).with_red(red));
        q.enqueue(t(0), pkt(100));
        q.enqueue(t(0), pkt(100));
        let outcome = q.enqueue(t(0), pkt(100));
        assert!(
            is_drop(outcome),
            "avg 2 >= max_th 1 must drop, got {outcome:?}"
        );
        assert!(matches!(outcome, EnqueueOutcome::EarlyDropped { .. }));
    }
}
