//! Drop-tail FIFO queues with optional ECN marking and occupancy statistics.

use std::collections::VecDeque;

use crate::hash::FastHashSet;
use crate::packet::{Packet, Payload};
use crate::time::{Dur, SimTime};
use crate::units::QueueCapacity;

/// Random Early Detection parameters (Floyd & Jacobson 1993).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RedConfig {
    /// Average queue length below which every packet is accepted.
    pub min_th: f64,
    /// Average queue length above which every packet is dropped/marked.
    pub max_th: f64,
    /// Drop/mark probability at `max_th`.
    pub max_p: f64,
    /// EWMA weight for the average queue estimate.
    pub wq: f64,
    /// Mark ECN-capable packets instead of dropping them.
    pub ecn: bool,
    /// Seed for the queue's deterministic PRNG.
    pub seed: u64,
}

impl Default for RedConfig {
    /// Classic gentle-ish defaults: min 15, max 45, max_p 0.1, wq 0.002.
    fn default() -> Self {
        RedConfig {
            min_th: 15.0,
            max_th: 45.0,
            max_p: 0.1,
            wq: 0.002,
            ecn: false,
            seed: 0x9e37_79b9,
        }
    }
}

/// Active queue management discipline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Aqm {
    /// Plain drop-tail (the paper's switches).
    DropTail,
    /// Random Early Detection, with a deterministic seeded PRNG so runs
    /// stay reproducible.
    Red(RedConfig),
}

/// Configuration of a switch output queue.
#[derive(Clone, Copy, Debug)]
pub struct QueueConfig {
    /// Maximum occupancy; arrivals beyond it are dropped (drop-tail).
    pub capacity: QueueCapacity,
    /// Instantaneous-queue ECN marking threshold in packets, as used by
    /// DCTCP: an arriving ECN-capable packet is marked CE when the queue
    /// length (including itself) exceeds this threshold. `None` disables
    /// marking.
    pub ecn_threshold: Option<usize>,
    /// Queue management discipline applied before the capacity check.
    pub aqm: Aqm,
}

impl QueueConfig {
    /// A drop-tail queue holding at most `pkts` packets, no ECN.
    pub fn drop_tail(pkts: usize) -> Self {
        QueueConfig {
            capacity: QueueCapacity::Packets(pkts),
            ecn_threshold: None,
            aqm: Aqm::DropTail,
        }
    }

    /// Enables ECN marking above `pkts` queued packets.
    pub fn with_ecn_threshold(mut self, pkts: usize) -> Self {
        self.ecn_threshold = Some(pkts);
        self
    }

    /// Applies RED instead of pure drop-tail (the capacity limit still
    /// backstops the queue).
    pub fn with_red(mut self, red: RedConfig) -> Self {
        self.aqm = Aqm::Red(red);
        self
    }
}

impl Default for QueueConfig {
    /// 100 packets, the buffer size used throughout the paper's 1 Gbps
    /// scenarios.
    fn default() -> Self {
        QueueConfig::drop_tail(100)
    }
}

/// Running statistics for one queue.
///
/// The occupancy integral enables the paper's *average queue length* metric
/// (Fig. 9(b)): `AQL = integral / observed span`.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueueStats {
    /// Packets accepted into the queue (or straight into the transmitter).
    pub enqueued: u64,
    /// Packets dropped because the queue was full.
    pub dropped: u64,
    /// Packets handed to the transmitter.
    pub dequeued: u64,
    /// Bytes handed to the transmitter.
    pub dequeued_bytes: u64,
    /// Packets marked CE on arrival.
    pub ecn_marked: u64,
    /// Packets dropped or marked early by RED (subset of `dropped` /
    /// `ecn_marked`).
    pub red_events: u64,
    /// Highest queue length seen, in packets.
    pub max_len: usize,
    /// Sum of (queue length x time) in packet-nanoseconds.
    pub occupancy_integral: u128,
}

impl QueueStats {
    /// Average queue length in packets over `span`.
    ///
    /// Returns 0 for an empty span.
    pub fn average_len(&self, span: Dur) -> f64 {
        if span == Dur::ZERO {
            return 0.0;
        }
        self.occupancy_integral as f64 / span.as_nanos() as f64
    }
}

/// A point in a recorded queue-length time series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueueSample {
    /// When the sample was taken.
    pub at: SimTime,
    /// Queue length in packets at that instant.
    pub len: usize,
}

/// A drop-tail FIFO with statistics and an optional length recorder.
#[derive(Debug)]
pub struct DropTailQueue<P> {
    config: QueueConfig,
    items: VecDeque<Packet<P>>,
    bytes: u64,
    stats: QueueStats,
    last_change: SimTime,
    recorder: Option<Vec<QueueSample>>,
    /// Fault injection: 0-based indices (in arrival order) of packets to
    /// drop deterministically, regardless of occupancy.
    forced_drops: FastHashSet<u64>,
    /// Fault injection: packets that may still be admitted beyond the
    /// configured capacity.
    overadmit_budget: u64,
    arrivals: u64,
    /// RED state: EWMA of the queue length and the PRNG stream position.
    red_avg: f64,
    red_rng: u64,
}

/// Outcome of offering a packet to a queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Packet accepted.
    Accepted,
    /// Packet dropped (queue full).
    Dropped,
}

impl<P: Payload> DropTailQueue<P> {
    /// Creates an empty queue.
    pub fn new(config: QueueConfig) -> Self {
        DropTailQueue {
            config,
            items: VecDeque::new(),
            bytes: 0,
            stats: QueueStats::default(),
            last_change: SimTime::ZERO,
            recorder: None,
            forced_drops: FastHashSet::default(),
            overadmit_budget: 0,
            arrivals: 0,
            red_avg: 0.0,
            red_rng: match config.aqm {
                Aqm::Red(r) => r.seed,
                Aqm::DropTail => 0,
            },
        }
    }

    /// Fault injection: deterministically drop the packets whose 0-based
    /// arrival index (counting every packet offered to this queue) is in
    /// `indices`, regardless of occupancy. Used to construct exact loss
    /// patterns in tests — e.g. "lose the whole tail of a window" to
    /// force an RTO rather than a fast retransmit.
    pub fn inject_drops(&mut self, indices: impl IntoIterator<Item = u64>) {
        self.forced_drops.extend(indices);
    }

    /// Fault injection: lets the queue admit up to `extra` packets beyond
    /// its configured capacity (each over-capacity admission consumes one
    /// unit of the budget). This deliberately *breaks* the queue-bound
    /// invariant; it exists so the invariant monitors can be shown to
    /// catch a real over-admission, and has no other legitimate use.
    pub fn inject_overadmit(&mut self, extra: u64) {
        self.overadmit_budget += extra;
    }

    /// The queue's configuration.
    pub fn config(&self) -> QueueConfig {
        self.config
    }

    /// Starts recording a (time, length) sample on every length change.
    pub fn enable_recording(&mut self) {
        if self.recorder.is_none() {
            self.recorder = Some(vec![QueueSample {
                at: SimTime::ZERO,
                len: self.items.len(),
            }]);
        }
    }

    /// The recorded length series, if recording was enabled.
    pub fn samples(&self) -> Option<&[QueueSample]> {
        self.recorder.as_deref()
    }

    /// Current length in packets.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue holds no packets.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Current occupancy in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Statistics accumulated so far. The occupancy integral includes time
    /// up to the last enqueue/dequeue only; call [`Self::settle`] first to
    /// extend it to a chosen end time.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Extends the occupancy integral to `now` without changing contents.
    pub fn settle(&mut self, now: SimTime) {
        self.advance_clock(now);
    }

    /// Offers a packet. On acceptance the packet may be CE-marked per the
    /// ECN threshold. Statistics are updated either way.
    pub fn enqueue(&mut self, now: SimTime, mut pkt: Packet<P>) -> EnqueueOutcome {
        self.advance_clock(now);
        let arrival = self.arrivals;
        self.arrivals += 1;
        if !self.forced_drops.is_empty() && self.forced_drops.remove(&arrival) {
            self.stats.dropped += 1;
            return EnqueueOutcome::Dropped;
        }
        if !self
            .config
            .capacity
            .admits(self.items.len(), self.bytes, pkt.size)
        {
            if self.overadmit_budget > 0 {
                // Injected fault: admit beyond capacity (skipping the AQM
                // and ECN steps) so the queue-bound monitor has something
                // real to catch.
                self.overadmit_budget -= 1;
                self.bytes += pkt.size as u64;
                self.items.push_back(pkt);
                self.stats.enqueued += 1;
                self.stats.max_len = self.stats.max_len.max(self.items.len());
                self.record(now);
                return EnqueueOutcome::Accepted;
            }
            self.stats.dropped += 1;
            return EnqueueOutcome::Dropped;
        }
        if let Aqm::Red(red) = self.config.aqm {
            self.red_avg = (1.0 - red.wq) * self.red_avg + red.wq * self.items.len() as f64;
            let p = if self.red_avg <= red.min_th {
                0.0
            } else if self.red_avg >= red.max_th {
                1.0
            } else {
                red.max_p * (self.red_avg - red.min_th) / (red.max_th - red.min_th)
            };
            if p > 0.0 {
                // Deterministic PRNG: splitmix64 stream.
                self.red_rng = self.red_rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = self.red_rng;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                let u = (z ^ (z >> 31)) as f64 / u64::MAX as f64;
                if u < p {
                    self.stats.red_events += 1;
                    if red.ecn && pkt.payload.ecn_capable() {
                        pkt.payload.mark_ce();
                        self.stats.ecn_marked += 1;
                        // Marked packets are still enqueued below.
                    } else {
                        self.stats.dropped += 1;
                        return EnqueueOutcome::Dropped;
                    }
                }
            }
        }
        if let Some(thresh) = self.config.ecn_threshold {
            if pkt.payload.ecn_capable() && self.items.len() + 1 > thresh {
                pkt.payload.mark_ce();
                self.stats.ecn_marked += 1;
            }
        }
        self.bytes += pkt.size as u64;
        self.items.push_back(pkt);
        self.stats.enqueued += 1;
        self.stats.max_len = self.stats.max_len.max(self.items.len());
        self.record(now);
        EnqueueOutcome::Accepted
    }

    /// Removes the packet at the head, if any.
    pub fn dequeue(&mut self, now: SimTime) -> Option<Packet<P>> {
        self.advance_clock(now);
        let pkt = self.items.pop_front()?;
        self.bytes -= pkt.size as u64;
        self.stats.dequeued += 1;
        self.stats.dequeued_bytes += pkt.size as u64;
        self.record(now);
        Some(pkt)
    }

    fn advance_clock(&mut self, now: SimTime) {
        let span = now.saturating_since(self.last_change);
        self.stats.occupancy_integral += self.items.len() as u128 * span.as_nanos() as u128;
        if now > self.last_change {
            self.last_change = now;
        }
    }

    fn record(&mut self, now: SimTime) {
        if let Some(rec) = &mut self.recorder {
            rec.push(QueueSample {
                at: now,
                len: self.items.len(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, NodeId, TagPayload};

    fn pkt(size: u32) -> Packet<TagPayload> {
        Packet::new(NodeId(0), NodeId(1), FlowId(0), size, TagPayload(0))
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    #[test]
    fn fifo_order() {
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(10));
        for i in 0..3 {
            let mut p = pkt(100);
            p.payload = TagPayload(i);
            assert_eq!(q.enqueue(t(0), p), EnqueueOutcome::Accepted);
        }
        for i in 0..3 {
            assert_eq!(q.dequeue(t(1)).unwrap().payload, TagPayload(i));
        }
        assert!(q.dequeue(t(2)).is_none());
    }

    #[test]
    fn drop_tail_on_packet_capacity() {
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(2));
        assert_eq!(q.enqueue(t(0), pkt(100)), EnqueueOutcome::Accepted);
        assert_eq!(q.enqueue(t(0), pkt(100)), EnqueueOutcome::Accepted);
        assert_eq!(q.enqueue(t(0), pkt(100)), EnqueueOutcome::Dropped);
        assert_eq!(q.stats().dropped, 1);
        assert_eq!(q.stats().enqueued, 2);
        assert_eq!(q.stats().max_len, 2);
    }

    #[test]
    fn drop_tail_on_byte_capacity() {
        let mut q = DropTailQueue::new(QueueConfig {
            capacity: QueueCapacity::Bytes(250),
            ecn_threshold: None,
            aqm: Aqm::DropTail,
        });
        assert_eq!(q.enqueue(t(0), pkt(100)), EnqueueOutcome::Accepted);
        assert_eq!(q.enqueue(t(0), pkt(100)), EnqueueOutcome::Accepted);
        assert_eq!(q.enqueue(t(0), pkt(100)), EnqueueOutcome::Dropped);
        assert_eq!(q.bytes(), 200);
    }

    #[test]
    fn occupancy_integral_accumulates() {
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(10));
        q.enqueue(t(0), pkt(100));
        q.enqueue(t(10), pkt(100)); // 1 pkt for 10us
        q.dequeue(t(30)); // 2 pkts for 20us
        q.settle(t(40)); // 1 pkt for 10us
        let integral = q.stats().occupancy_integral;
        assert_eq!(integral, (10_000 + 2 * 20_000 + 10_000) as u128);
        let avg = q.stats().average_len(Dur::from_micros(40));
        assert!((avg - 1.5).abs() < 1e-9);
    }

    #[test]
    fn average_len_zero_span() {
        let q: DropTailQueue<TagPayload> = DropTailQueue::new(QueueConfig::default());
        assert_eq!(q.stats().average_len(Dur::ZERO), 0.0);
    }

    #[test]
    fn recording_captures_changes() {
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(10));
        q.enable_recording();
        q.enqueue(t(1), pkt(100));
        q.enqueue(t(2), pkt(100));
        q.dequeue(t(3));
        let s = q.samples().unwrap();
        assert_eq!(
            s,
            &[
                QueueSample { at: t(0), len: 0 },
                QueueSample { at: t(1), len: 1 },
                QueueSample { at: t(2), len: 2 },
                QueueSample { at: t(3), len: 1 },
            ]
        );
    }

    #[derive(Clone, Copy, Debug, Default)]
    struct EcnPayload {
        ce: bool,
    }
    impl Payload for EcnPayload {
        fn ecn_capable(&self) -> bool {
            true
        }
        fn mark_ce(&mut self) {
            self.ce = true;
        }
        fn is_ce(&self) -> bool {
            self.ce
        }
    }

    #[test]
    fn ecn_marks_above_threshold() {
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(10).with_ecn_threshold(1));
        let mk = || Packet::new(NodeId(0), NodeId(1), FlowId(0), 100, EcnPayload::default());
        q.enqueue(t(0), mk()); // len 1, not > 1: unmarked
        q.enqueue(t(0), mk()); // len 2 > 1: marked
        assert!(!q.dequeue(t(1)).unwrap().payload.is_ce());
        assert!(q.dequeue(t(1)).unwrap().payload.is_ce());
        assert_eq!(q.stats().ecn_marked, 1);
    }

    #[test]
    fn red_drops_early_and_deterministically() {
        let red = RedConfig {
            min_th: 2.0,
            max_th: 6.0,
            max_p: 1.0,
            wq: 0.5, // fast-moving average for the test
            ecn: false,
            seed: 7,
        };
        let run = || {
            let mut q = DropTailQueue::new(QueueConfig::drop_tail(100).with_red(red));
            for _ in 0..50 {
                q.enqueue(t(0), pkt(100));
            }
            (q.stats().dropped, q.stats().red_events, q.len())
        };
        let (dropped, red_events, len) = run();
        assert!(dropped > 0, "RED must drop before the 100-packet limit");
        assert_eq!(dropped, red_events);
        assert!(len < 50);
        assert_eq!(run(), (dropped, red_events, len), "deterministic");
    }

    #[test]
    fn red_ecn_marks_instead_of_dropping() {
        let red = RedConfig {
            min_th: 1.0,
            max_th: 3.0,
            max_p: 1.0,
            wq: 0.9,
            ecn: true,
            seed: 3,
        };
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(100).with_red(red));
        let mk = || Packet::new(NodeId(0), NodeId(1), FlowId(0), 100, EcnPayload::default());
        for _ in 0..30 {
            q.enqueue(t(0), mk());
        }
        assert_eq!(q.stats().dropped, 0, "ECN-capable traffic is marked");
        assert!(q.stats().ecn_marked > 0);
        assert_eq!(q.len(), 30);
    }

    #[test]
    fn red_below_min_th_never_drops() {
        let red = RedConfig::default();
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(100).with_red(red));
        for _ in 0..10 {
            q.enqueue(t(0), pkt(100));
            q.dequeue(t(1));
        }
        assert_eq!(q.stats().dropped, 0);
        assert_eq!(q.stats().red_events, 0);
    }

    #[test]
    fn forced_drops_hit_exact_arrivals() {
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(10));
        q.inject_drops([1, 3]);
        let mut kept = Vec::new();
        for i in 0..5 {
            let mut p = pkt(100);
            p.payload = TagPayload(i);
            if q.enqueue(t(0), p) == EnqueueOutcome::Accepted {
                kept.push(i);
            }
        }
        assert_eq!(kept, vec![0, 2, 4]);
        assert_eq!(q.stats().dropped, 2);
        // Injected indices are consumed: re-offering does not drop again.
        assert_eq!(q.enqueue(t(1), pkt(100)), EnqueueOutcome::Accepted);
    }

    #[test]
    fn non_ect_packets_never_marked() {
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(10).with_ecn_threshold(0));
        q.enqueue(t(0), pkt(100));
        assert_eq!(q.stats().ecn_marked, 0);
        assert!(!q.dequeue(t(1)).unwrap().payload.is_ce());
    }
}
