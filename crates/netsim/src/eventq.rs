//! The engine's event queue: an indexed 4-ary min-heap.
//!
//! The discrete-event hot path is dominated by `push`/`pop` of
//! near-future events. `std::collections::BinaryHeap` works, but a
//! 4-ary heap laid out in one flat `Vec` halves the tree depth, keeps
//! four children in one cache line of keys, and avoids the max-heap
//! key inversion dance ([`std::cmp::Reverse`] wrappers or reversed
//! `Ord`). Entries are stored by value — no per-event boxing — and
//! sifts move small `(time, seq, value)` triples.
//!
//! Ordering contract (identical to the `BinaryHeap<EvEntry>` it
//! replaced): events pop in ascending `(time, seq)` order, where `seq`
//! is the queue's own insertion counter. Two events scheduled for the
//! same instant therefore pop in insertion order, which is what makes
//! simulations a pure function of their inputs. The property tests in
//! `tests/eventq_props.rs` pin this equivalence against a
//! `BinaryHeap` reference model.

use crate::time::SimTime;

const ARITY: usize = 4;

#[derive(Clone, Debug)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    value: T,
}

impl<T> Entry<T> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// A stable priority queue of timestamped events.
///
/// ```
/// use netsim::eventq::EventQueue;
/// use netsim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(20), "late");
/// q.push(SimTime::from_nanos(10), "early");
/// q.push(SimTime::from_nanos(10), "early-second");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Clone, Debug)]
pub struct EventQueue<T> {
    heap: Vec<Entry<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub const fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(cap),
            seq: 0,
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Events pushed over the queue's lifetime (the insertion-sequence
    /// counter).
    #[inline]
    pub fn pushed(&self) -> u64 {
        self.seq
    }

    /// Schedules `value` at `at`. Amortized O(1) when `at` sorts after
    /// most pending events (the common append-to-the-future case costs
    /// one comparison per tree level actually climbed, usually zero);
    /// O(log₄ n) worst case.
    #[inline]
    pub fn push(&mut self, at: SimTime, value: T) {
        self.seq += 1;
        let seq = self.seq;
        self.heap.push(Entry { at, seq, value });
        self.sift_up(self.heap.len() - 1);
    }

    /// Schedules `value` at `at` under a caller-supplied sequence
    /// number instead of the queue's own counter. The engine uses this
    /// to merge the queue deterministically with the timing wheel: both
    /// draw from one global sequence, so `(at, seq)` totally orders
    /// events across the two structures. Caller-supplied sequences must
    /// be unique; they do not advance [`Self::pushed`].
    #[inline]
    pub fn push_with_seq(&mut self, at: SimTime, seq: u64, value: T) {
        self.heap.push(Entry { at, seq, value });
        self.sift_up(self.heap.len() - 1);
    }

    /// Timestamp of the earliest pending event.
    #[inline]
    pub fn peek_at(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.at)
    }

    /// `(time, seq)` key of the earliest pending event — comparable
    /// against [`crate::wheel::TimerWheel::peek_key`] when both share a
    /// sequence counter.
    #[inline]
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.heap.first().map(|e| e.key())
    }

    /// Borrows the earliest pending event along with its key.
    #[inline]
    pub fn peek(&self) -> Option<(SimTime, u64, &T)> {
        self.heap.first().map(|e| (e.at, e.seq, &e.value))
    }

    /// Removes and returns the earliest event (ties in insertion
    /// order).
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let last = self.heap.len().checked_sub(1)?;
        self.heap.swap(0, last);
        let entry = self.heap.pop().expect("len checked above"); // trim-lint: allow(no-panic-in-library, reason = "len >= 1 established two lines up")
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some((entry.at, entry.value))
    }

    /// Iterates over pending events in arbitrary (heap) order. For
    /// inspection only — never let this order influence simulation
    /// state.
    pub fn iter_unordered(&self) -> impl Iterator<Item = (SimTime, &T)> {
        self.heap.iter().map(|e| (e.at, &e.value))
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.heap[parent].key() <= self.heap[i].key() {
                break;
            }
            self.heap.swap(parent, i);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let first_child = i * ARITY + 1;
            if first_child >= n {
                break;
            }
            let last_child = (first_child + ARITY).min(n);
            let mut best = first_child;
            for c in first_child + 1..last_child {
                if self.heap[c].key() < self.heap[best].key() {
                    best = c;
                }
            }
            if self.heap[i].key() <= self.heap[best].key() {
                break;
            }
            self.heap.swap(i, best);
            i = best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &ns in &[50u64, 10, 40, 20, 30, 0, 60] {
            q.push(t(ns), ns);
        }
        let mut out = Vec::new();
        while let Some((at, v)) = q.pop() {
            assert_eq!(at.as_nanos(), v);
            out.push(v);
        }
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn same_timestamp_pops_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100u64 {
            q.push(t(7), i);
        }
        for i in 0..100u64 {
            assert_eq!(q.pop(), Some((t(7), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(t(5), 5u64);
        q.push(t(1), 1);
        assert_eq!(q.pop(), Some((t(1), 1)));
        q.push(t(3), 3);
        q.push(t(2), 2);
        assert_eq!(q.pop(), Some((t(2), 2)));
        assert_eq!(q.pop(), Some((t(3), 3)));
        assert_eq!(q.pop(), Some((t(5), 5)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_at(), None);
        q.push(t(9), ());
        q.push(t(4), ());
        assert_eq!(q.peek_at(), Some(t(4)));
        q.pop();
        assert_eq!(q.peek_at(), Some(t(9)));
    }

    #[test]
    fn len_and_pushed_track_operations() {
        let mut q = EventQueue::new();
        q.push(t(1), ());
        q.push(t(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.pushed(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.pushed(), 2, "pushed counts lifetime insertions");
    }

    #[test]
    fn push_with_seq_orders_by_caller_sequence() {
        let mut q = EventQueue::new();
        q.push_with_seq(t(7), 10, "b");
        q.push_with_seq(t(7), 3, "a");
        q.push_with_seq(t(2), 99, "first");
        assert_eq!(q.peek_key(), Some((t(2), 99)));
        assert_eq!(q.peek(), Some((t(2), 99, &"first")));
        assert_eq!(q.pop(), Some((t(2), "first")));
        assert_eq!(q.pop(), Some((t(7), "a")));
        assert_eq!(q.pop(), Some((t(7), "b")));
    }

    #[test]
    fn iter_unordered_sees_every_pending_event() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.push(t(i), i);
        }
        q.pop();
        let mut seen: Vec<u64> = q.iter_unordered().map(|(_, &v)| v).collect();
        seen.sort_unstable();
        assert_eq!(seen, (1..10).collect::<Vec<_>>());
    }
}
