//! Hierarchical timing wheel for timer events.
//!
//! The engine schedules two very different event populations: packet and
//! link events, which are dense in time and short-lived, and per-flow
//! timers (RTO, delayed-ACK, probe deadlines), which at the million-flow
//! scale dominate the event count and are overwhelmingly *cancelled*
//! before they fire (every ACK re-arms the RTO). A comparison-based heap
//! pays `O(log n)` per schedule and cannot cancel in place; the wheel
//! pays `O(1)` for schedule and cancel on the hot near-horizon levels and
//! amortized `O(1)` per fired timer.
//!
//! Layout: [`LEVELS`] levels of [`SLOTS`] slots each. Level `l` has slot
//! width `2^(BASE_SHIFT + LEVEL_BITS * l)` nanoseconds, so level 0 covers
//! ~268 µs at ~4 µs resolution and the top level covers ~3.3 days. A
//! timer is placed at the lowest level whose window (64 slots ahead of
//! the cursor) contains its deadline; deadlines beyond the top window go
//! to a small overflow list. When the cursor crosses a slot boundary at
//! level `l ≥ 1`, the slot it enters is drained and its timers re-placed
//! at lower levels (the cascade). Because the engine never advances time
//! past a pending timer without popping it, a cascade only ever touches
//! the slot the cursor is entering, which keeps advancement cheap.
//!
//! Determinism: every timer carries the engine's global insertion
//! sequence number, and [`TimerWheel::peek_key`]/[`TimerWheel::pop`]
//! order strictly by `(deadline, seq)` — the exact total order the
//! [`EventQueue`](crate::EventQueue) provides — so the two sources merge
//! into one deterministic stream. Two live timers with equal deadlines
//! always occupy the same slot (placement depends only on the deadline
//! and the cursor), so the FIFO tie-break is a local scan of one slot.
//!
//! Cancellation is O(1) and *generational*: [`TimerWheel::cancel`] frees
//! the entry immediately and bumps its generation, so a stale handle —
//! one whose timer already fired, or whose slot was recycled for a newer
//! timer — can never cancel the wrong timer (the "ghost cancel" edge) and
//! a fired timer can never fire twice (refs to freed entries are skipped
//! and compacted lazily).

use std::fmt;

use crate::time::SimTime;

/// Number of wheel levels.
const LEVELS: usize = 6;
/// Slots per level; also the per-level fan-out (2^LEVEL_BITS).
const SLOTS: usize = 64;
/// log2 of the level-0 slot width in nanoseconds (~4.1 µs).
const BASE_SHIFT: u32 = 12;
/// log2 of SLOTS.
const LEVEL_BITS: u32 = 6;

/// log2 of the slot width at `level`.
#[inline]
const fn shift(level: usize) -> u32 {
    BASE_SHIFT + LEVEL_BITS * level as u32
}

/// A handle into the entry slab: index plus the generation it was issued
/// under. Slot vectors store these; a ref whose generation no longer
/// matches its entry is dead (cancelled or fired) and is dropped on
/// contact.
#[derive(Clone, Copy, Debug)]
struct SlotRef {
    idx: u32,
    gen: u32,
}

/// One timer in the entry slab.
#[derive(Clone, Copy, Debug)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    gen: u32,
    value: T,
}

/// Where the cached minimum currently lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Loc {
    Slot { level: u8, slot: u8 },
    Overflow,
}

/// Cached minimum pending timer, kept coherent across schedule/cancel
/// so repeated peeks in the merge loop are O(1).
#[derive(Clone, Copy, Debug)]
struct Cached {
    at: SimTime,
    seq: u64,
    idx: u32,
    loc: Loc,
}

/// Hierarchical timing wheel ordered by `(deadline, sequence)`.
///
/// `T` is the timer payload, returned by value on [`TimerWheel::pop`].
pub struct TimerWheel<T: Copy> {
    /// Entry slab; freed entries are recycled through `free`.
    entries: Vec<Entry<T>>,
    /// Free list of slab indices.
    free: Vec<u32>,
    /// `LEVELS * SLOTS` buckets of refs into the slab.
    slots: Vec<Vec<SlotRef>>,
    /// Per-level occupancy bitmask (bit `s` = slot `s` non-empty). May
    /// overstate occupancy (stale refs); never understates it.
    occ: [u64; LEVELS],
    /// Deadlines beyond the top level's window.
    overflow: Vec<SlotRef>,
    /// Current wheel time in nanoseconds. Invariant: no live entry has a
    /// deadline below this.
    cur: u64,
    /// Live (scheduled, not yet fired or cancelled) timer count.
    live: usize,
    /// Cached `(deadline, seq)` minimum, if known.
    cached: Option<Cached>,
}

impl<T: Copy> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> TimerWheel<T> {
    /// Creates an empty wheel at time zero.
    pub fn new() -> Self {
        TimerWheel {
            entries: Vec::new(),
            free: Vec::new(),
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occ: [0; LEVELS],
            overflow: Vec::new(),
            cur: 0,
            live: 0,
            cached: None,
        }
    }

    /// Number of live timers.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Current wheel time in nanoseconds.
    pub fn now_nanos(&self) -> u64 {
        self.cur
    }

    /// Schedules a timer at `at` with the caller-supplied insertion
    /// sequence number and returns an opaque handle for [`Self::cancel`].
    ///
    /// `seq` must be unique and monotonically increasing across all
    /// schedules (the engine's global event sequence); `at` must not be
    /// in the wheel's past.
    pub fn schedule(&mut self, at: SimTime, seq: u64, value: T) -> u64 {
        debug_assert!(
            at.as_nanos() >= self.cur,
            "timer scheduled into the wheel's past"
        );
        let idx = match self.free.pop() {
            Some(i) => {
                let e = &mut self.entries[i as usize];
                e.at = at;
                e.seq = seq;
                e.value = value;
                i
            }
            None => {
                self.entries.push(Entry {
                    at,
                    seq,
                    gen: 0,
                    value,
                });
                (self.entries.len() - 1) as u32
            }
        };
        let gen = self.entries[idx as usize].gen;
        let loc = self.place(SlotRef { idx, gen }, at);
        self.live += 1;
        // A known minimum can only be improved on; an unknown minimum
        // (cache invalidated by a cancel) stays unknown — the new timer
        // is not necessarily the smallest pending one. The sole timer of
        // a previously empty wheel is trivially the minimum.
        if self.live == 1 {
            self.cached = Some(Cached { at, seq, idx, loc });
        } else if let Some(c) = self.cached {
            if (at, seq) < (c.at, c.seq) {
                self.cached = Some(Cached { at, seq, idx, loc });
            }
        }
        (u64::from(gen) << 32) | u64::from(idx)
    }

    /// Cancels the timer behind `handle`. Returns its deadline if it was
    /// still live, `None` if it already fired or was already cancelled
    /// (including when its slab slot has since been recycled — the
    /// generation check makes a stale handle a no-op).
    pub fn cancel(&mut self, handle: u64) -> Option<SimTime> {
        let idx = (handle & 0xFFFF_FFFF) as usize;
        let gen = (handle >> 32) as u32;
        let e = self.entries.get(idx)?;
        if e.gen != gen {
            return None;
        }
        let at = e.at;
        self.entries[idx].gen = self.entries[idx].gen.wrapping_add(1);
        self.free.push(idx as u32);
        self.live -= 1;
        if let Some(c) = self.cached {
            if c.idx == idx as u32 {
                self.cached = None;
            }
        }
        Some(at)
    }

    /// The `(deadline, seq)` key of the next timer to fire, if any.
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        if self.cached.is_none() {
            self.cached = self.scan();
        }
        self.cached.map(|c| (c.at, c.seq))
    }

    /// The next timer's key and payload without removing it.
    pub fn peek(&mut self) -> Option<(SimTime, u64, T)> {
        if self.cached.is_none() {
            self.cached = self.scan();
        }
        self.cached
            .map(|c| (c.at, c.seq, self.entries[c.idx as usize].value))
    }

    /// Removes and returns the next timer in `(deadline, seq)` order,
    /// advancing the wheel to its deadline.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        let c = match self.cached {
            Some(c) => c,
            None => {
                self.cached = self.scan();
                self.cached?
            }
        };
        let value = self.remove_ref(c);
        self.cached = None;
        self.advance_to(c.at);
        Some((c.at, c.seq, value))
    }

    /// Advances the wheel's notion of time to `t`, cascading any slot the
    /// cursor enters at levels ≥ 1. Safe to call with `t` in the past
    /// (no-op). The engine calls this whenever it processes a non-timer
    /// event, so placement windows track simulation time.
    pub fn advance_to(&mut self, t: SimTime) {
        let t = t.as_nanos();
        if t <= self.cur {
            return;
        }
        let old = self.cur;
        self.cur = t;
        // Top-down so an entry cascading out of level l can land in — and
        // then be drained from — the freshly entered slot of level l-1.
        for l in (1..LEVELS).rev() {
            let s = shift(l);
            let tick = t >> s;
            if tick == old >> s {
                continue;
            }
            // Only the tick being entered can hold live entries: every
            // live deadline is >= t (the engine pops timers before
            // advancing past them), so ticks in (old, tick) are empty of
            // live refs, and ticks beyond `tick` stay put.
            let slot = (tick & (SLOTS as u64 - 1)) as usize;
            let cell = l * SLOTS + slot;
            if self.slots[cell].is_empty() {
                self.occ[l] &= !(1u64 << slot);
                continue;
            }
            let refs = std::mem::take(&mut self.slots[cell]);
            self.occ[l] &= !(1u64 << slot);
            for r in refs {
                let e = &self.entries[r.idx as usize];
                if e.gen != r.gen {
                    continue; // cancelled or fired: drop the stale ref
                }
                if e.at.as_nanos() >> s == tick {
                    let at = e.at;
                    let loc = self.place(r, at);
                    if let Some(c) = &mut self.cached {
                        if c.idx == r.idx {
                            c.loc = loc;
                        }
                    }
                } else {
                    // Aliased future tick (defensive; placement windows
                    // make this unreachable): keep it where it was.
                    self.slots[cell].push(r);
                    self.occ[l] |= 1u64 << slot;
                }
            }
        }
    }

    /// Places a ref at the lowest level whose window contains `at`.
    fn place(&mut self, r: SlotRef, at: SimTime) -> Loc {
        let t = at.as_nanos();
        for l in 0..LEVELS {
            let s = shift(l);
            if (t >> s).saturating_sub(self.cur >> s) < SLOTS as u64 {
                let slot = ((t >> s) & (SLOTS as u64 - 1)) as usize;
                self.slots[l * SLOTS + slot].push(r);
                self.occ[l] |= 1u64 << slot;
                return Loc::Slot {
                    level: l as u8,
                    slot: slot as u8,
                };
            }
        }
        self.overflow.push(r);
        Loc::Overflow
    }

    /// Removes the ref described by a (valid) cached minimum, frees its
    /// entry, and returns the payload. Compacts stale refs it walks over.
    fn remove_ref(&mut self, c: Cached) -> T {
        let bucket = match c.loc {
            Loc::Slot { level, slot } => {
                &mut self.slots[usize::from(level) * SLOTS + usize::from(slot)]
            }
            Loc::Overflow => &mut self.overflow,
        };
        let mut i = 0;
        let mut found = false;
        while i < bucket.len() {
            let r = bucket[i];
            if r.idx == c.idx && self.entries[r.idx as usize].gen == r.gen {
                bucket.swap_remove(i);
                found = true;
                break;
            }
            if self.entries[r.idx as usize].gen != r.gen {
                bucket.swap_remove(i);
                continue;
            }
            i += 1;
        }
        debug_assert!(found, "cached minimum not found in its bucket");
        if bucket.is_empty() {
            if let Loc::Slot { level, slot } = c.loc {
                self.occ[usize::from(level)] &= !(1u64 << slot);
            }
        }
        let e = &mut self.entries[c.idx as usize];
        let value = e.value;
        e.gen = e.gen.wrapping_add(1);
        self.free.push(c.idx);
        self.live -= 1;
        value
    }

    /// Full minimum scan: per level, walk occupied slots in circular tick
    /// order from the cursor and take the first non-stale bucket's
    /// `(at, seq)` minimum; prune higher levels once the best key beats
    /// their lower bound; always fold in the overflow list.
    fn scan(&mut self) -> Option<Cached> {
        let mut best: Option<Cached> = None;
        for l in 0..LEVELS {
            if l > 0 {
                if let Some(b) = &best {
                    // Every level-l live entry's tick is strictly ahead of
                    // the cursor's, so its deadline is at least the start
                    // of the next level-l tick.
                    let bound = ((self.cur >> shift(l)) + 1) << shift(l);
                    if b.at.as_nanos() < bound {
                        break;
                    }
                }
            }
            let p = ((self.cur >> shift(l)) & (SLOTS as u64 - 1)) as u32;
            let mut mask = self.occ[l];
            while mask != 0 {
                let k = mask.rotate_right(p).trailing_zeros();
                let slot = ((p + k) & (SLOTS as u32 - 1)) as usize;
                match self.bucket_min(
                    l * SLOTS + slot,
                    Loc::Slot {
                        level: l as u8,
                        slot: slot as u8,
                    },
                ) {
                    Some(c) => {
                        if best.is_none_or(|b| (c.at, c.seq) < (b.at, b.seq)) {
                            best = Some(c);
                        }
                        break;
                    }
                    None => {
                        self.occ[l] &= !(1u64 << slot);
                        mask &= !(1u64 << slot);
                    }
                }
            }
        }
        if !self.overflow.is_empty() {
            if let Some(c) = self.bucket_min_overflow() {
                if best.is_none_or(|b| (c.at, c.seq) < (b.at, b.seq)) {
                    best = Some(c);
                }
            }
        }
        best
    }

    /// Minimum live entry in a slot bucket, compacting stale refs.
    fn bucket_min(&mut self, cell: usize, loc: Loc) -> Option<Cached> {
        let bucket = &mut self.slots[cell];
        let mut best: Option<Cached> = None;
        let mut i = 0;
        while i < bucket.len() {
            let r = bucket[i];
            let e = &self.entries[r.idx as usize];
            if e.gen != r.gen {
                bucket.swap_remove(i);
                continue;
            }
            if best.is_none_or(|b| (e.at, e.seq) < (b.at, b.seq)) {
                best = Some(Cached {
                    at: e.at,
                    seq: e.seq,
                    idx: r.idx,
                    loc,
                });
            }
            i += 1;
        }
        best
    }

    /// Minimum live entry in the overflow list, compacting stale refs.
    fn bucket_min_overflow(&mut self) -> Option<Cached> {
        let mut best: Option<Cached> = None;
        let mut i = 0;
        while i < self.overflow.len() {
            let r = self.overflow[i];
            let e = &self.entries[r.idx as usize];
            if e.gen != r.gen {
                self.overflow.swap_remove(i);
                continue;
            }
            if best.is_none_or(|b| (e.at, e.seq) < (b.at, b.seq)) {
                best = Some(Cached {
                    at: e.at,
                    seq: e.seq,
                    idx: r.idx,
                    loc: Loc::Overflow,
                });
            }
            i += 1;
        }
        best
    }
}

impl<T: Copy> fmt::Debug for TimerWheel<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TimerWheel")
            .field("live", &self.live)
            .field("cur", &self.cur)
            .field("entries", &self.entries.len())
            .field("overflow", &self.overflow.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel<u32>) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some((at, seq, v)) = w.pop() {
            out.push((at.as_nanos(), seq, v));
        }
        out
    }

    #[test]
    fn pops_in_deadline_then_seq_order() {
        let mut w = TimerWheel::new();
        w.schedule(SimTime::from_nanos(500), 1, 10);
        w.schedule(SimTime::from_nanos(100), 2, 20);
        w.schedule(SimTime::from_nanos(500), 3, 30);
        w.schedule(SimTime::from_nanos(1 << 20), 4, 40); // level 1+
        assert_eq!(
            drain(&mut w),
            vec![(100, 2, 20), (500, 1, 10), (500, 3, 30), (1 << 20, 4, 40)]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn cancel_is_o1_and_returns_deadline() {
        let mut w = TimerWheel::new();
        let a = w.schedule(SimTime::from_nanos(100), 1, 1);
        let b = w.schedule(SimTime::from_nanos(200), 2, 2);
        assert_eq!(w.cancel(a), Some(SimTime::from_nanos(100)));
        assert_eq!(w.cancel(a), None, "double cancel is a no-op");
        assert_eq!(w.len(), 1);
        assert_eq!(drain(&mut w), vec![(200, 2, 2)]);
        assert_eq!(w.cancel(b), None, "cancelling a fired timer is a no-op");
    }

    #[test]
    fn stale_handle_cannot_cancel_recycled_slot() {
        let mut w = TimerWheel::new();
        let a = w.schedule(SimTime::from_nanos(100), 1, 1);
        assert!(w.pop().is_some()); // `a` fires; its slab slot is freed
        let b = w.schedule(SimTime::from_nanos(200), 2, 2);
        // `b` recycles the slot behind `a`'s handle; the generation
        // check must make the stale cancel a no-op.
        assert_eq!(w.cancel(a), None);
        assert_eq!(w.len(), 1);
        assert_eq!(w.cancel(b), Some(SimTime::from_nanos(200)));
    }

    #[test]
    fn far_future_timer_cascades_down() {
        let mut w = TimerWheel::new();
        // Deadline far beyond level 0's window, plus near timers around it.
        let far = (1u64 << 30) + 12_345;
        w.schedule(SimTime::from_nanos(far), 1, 1);
        w.schedule(SimTime::from_nanos(64), 2, 2);
        assert_eq!(w.pop().map(|(at, ..)| at.as_nanos()), Some(64));
        // Advance across several cascade boundaries below the deadline.
        w.advance_to(SimTime::from_nanos(far - 1));
        assert_eq!(w.peek_key(), Some((SimTime::from_nanos(far), 1)));
        assert_eq!(w.pop().map(|(at, ..)| at.as_nanos()), Some(far));
        assert!(w.is_empty());
    }

    #[test]
    fn overflow_deadlines_beyond_top_window_fire_in_order() {
        let mut w = TimerWheel::new();
        let huge = 1u64 << 52; // beyond the 2^48 ns top window
        w.schedule(SimTime::from_nanos(huge + 5), 1, 1);
        w.schedule(SimTime::from_nanos(huge), 2, 2);
        w.schedule(SimTime::from_nanos(10), 3, 3);
        assert_eq!(
            drain(&mut w),
            vec![(10, 3, 3), (huge, 2, 2), (huge + 5, 1, 1)]
        );
    }

    #[test]
    fn same_deadline_fifo_across_cascade() {
        let mut w = TimerWheel::new();
        let t = (1u64 << 25) + 7;
        // First scheduled while the deadline sits at a high level...
        w.schedule(SimTime::from_nanos(t), 1, 1);
        // ...advance so the deadline now lies in level 0's window, then
        // schedule a second timer at the exact same deadline.
        w.advance_to(SimTime::from_nanos(t - 100));
        w.schedule(SimTime::from_nanos(t), 2, 2);
        assert_eq!(drain(&mut w), vec![(t, 1, 1), (t, 2, 2)]);
    }

    #[test]
    fn peek_matches_pop_under_churn() {
        let mut w = TimerWheel::new();
        let mut seq = 0u64;
        let mut handles = Vec::new();
        for i in 0..1000u64 {
            seq += 1;
            // Spread deadlines across all levels.
            let at = (i * 7919) % (1 << 40);
            handles.push(w.schedule(SimTime::from_nanos(at), seq, i as u32));
        }
        for h in handles.iter().step_by(3) {
            w.cancel(*h);
        }
        let mut prev = None;
        while let Some(k) = w.peek_key() {
            let (at, s, _) = w.pop().unwrap();
            assert_eq!((at, s), k);
            if let Some(p) = prev {
                assert!(k > p, "pop order not strictly increasing: {p:?} -> {k:?}");
            }
            prev = Some(k);
        }
        assert!(w.is_empty());
    }

    #[test]
    fn zero_delay_timer_fires_at_current_time() {
        let mut w = TimerWheel::new();
        w.advance_to(SimTime::from_nanos(123_456_789));
        w.schedule(SimTime::from_nanos(123_456_789), 1, 9);
        assert_eq!(w.pop(), Some((SimTime::from_nanos(123_456_789), 1, 9)));
    }
}
