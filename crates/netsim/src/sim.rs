//! The discrete-event simulation engine.
//!
//! [`Simulator`] owns the network (nodes, channels, routes), the event
//! queue, and the host agents. Build a network with [`Simulator::add_host`],
//! [`Simulator::add_switch`] and [`Simulator::connect`], then drive it with
//! [`Simulator::run_until`] or [`Simulator::run`].
//!
//! Determinism: events are ordered by `(time, insertion sequence)`, so two
//! runs of the same program produce identical schedules.
//!
//! Hot-path layout (the engine sustains 100k-flow incasts):
//!
//! - events live in an indexed 4-ary min-heap ([`crate::eventq`]) of small
//!   `Copy` records — packets are *not* stored in the heap;
//! - in-flight packets live in a slab [`crate::arena::PacketArena`] and
//!   events carry a 4-byte [`PacketRef`], so steady-state simulation
//!   allocates zero per-packet heap memory;
//! - routing is O(1) per hop for direct-neighbor destinations (every hop
//!   of the paper's incast topologies) and O(switch-degree) otherwise,
//!   with per-switch distance tables instead of the former
//!   O(nodes²) next-hop matrix;
//! - monitor emission is a single branch on a cached flag when detached
//!   ([`Ctx::emit_monitor_with`] defers event construction entirely).

use std::any::Any;
use std::collections::VecDeque;

use crate::agent::Agent;
use crate::arena::{PacketArena, PacketRef};
use crate::channel::Channel;
use crate::eventq::EventQueue;
use crate::hash::FastHashMap;
use crate::monitor::{AuditStats, InvariantMonitor, MonitorEvent, Violation};
use crate::packet::{ChannelId, FlowId, NodeId, Packet, Payload};
use crate::queue::{QueueConfig, QueueSample, QueueStats};
use crate::time::{Dur, SimTime};
use crate::trace::{PacketEvent, PacketEventKind, PacketTrace};
use crate::units::{Bandwidth, QueueCapacity};
use crate::wheel::TimerWheel;

/// Handle to a pending timer, used for cancellation. Wraps the timing
/// wheel's generational handle, so a stale id (already fired or already
/// cancelled) is always a harmless no-op even after its internal slot
/// has been recycled for a newer timer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// An engine event. Deliberately small and `Copy`: packets referenced by
/// `Arrival` live in the packet arena, not in the event queue, so heap
/// sifts move 24-byte records regardless of the payload type. Timers do
/// not appear here — they live in the [`TimerWheel`] and merge with this
/// queue by `(time, seq)` in the run loop.
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Packet finishes propagation and arrives at a node.
    Arrival { node: NodeId, pkt: PacketRef },
    /// A channel's transmitter finishes serializing a packet.
    TxDone { ch: ChannelId },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum NodeKind {
    Host,
    Switch,
}

/// Precomputed forwarding state.
///
/// The former implementation materialized `routes[node][dst]` — an
/// O(nodes²) matrix that is prohibitive at 100k hosts. Instead we keep:
///
/// - `dist[switch_row][node]`: hop distance from each *switch* to every
///   node (switches × nodes, and real topologies have few switches);
/// - `neighbor_edges[node]`: direct neighbor → parallel edges to it, in
///   adjacency order. A one-hop route is always strictly shorter than any
///   route via a switch, so when the destination is a direct neighbor the
///   equal-cost set is exactly these edges — one hash lookup. This covers
///   every hop of a star/incast topology.
/// - `switch_neighbors[node]`: the node's switch neighbors in adjacency
///   order, scanned (typically a handful) for remote destinations.
///
/// Paths never transit a host: hosts terminate packets. (The old BFS
/// nominally permitted host transit, but hosts are degree-1 leaves in
/// every topology this crate builds, so no such path was ever a shortest
/// path.) Equal-cost sets come out in adjacency order either way, so
/// per-flow ECMP selection is unchanged and simulations reproduce the
/// previous engine's schedules exactly.
#[derive(Debug, Default)]
struct RouteTable {
    /// Node index → dense switch row; `u32::MAX` for hosts.
    switch_row: Vec<u32>,
    /// Per switch row: hop distance to every node (`u32::MAX` if
    /// unreachable).
    dist: Vec<Vec<u32>>,
    /// Per node: direct neighbor → every parallel edge to it, in
    /// adjacency order.
    neighbor_edges: Vec<FastHashMap<u32, Vec<ChannelId>>>,
    /// Per node: switch neighbors `(node index, edge)` in adjacency order.
    switch_neighbors: Vec<Vec<(u32, ChannelId)>>,
}

/// Everything the engine owns except the agents. Splitting this out lets an
/// agent hold `&mut self` while the engine hands it a [`Ctx`] borrowing the
/// rest of the simulator.
struct Core<P: Payload> {
    now: SimTime,
    events: EventQueue<Ev>,
    /// Timer events, keyed by `(deadline, seq)` like the event queue.
    /// Timers dominate the event population at high flow counts and are
    /// overwhelmingly cancelled before firing (every ACK re-arms the
    /// RTO), which is exactly the workload a wheel handles in O(1).
    wheel: TimerWheel<(NodeId, u64)>,
    /// Global insertion sequence shared by `events` and `wheel`; makes
    /// `(time, seq)` a total order across both structures, so the merged
    /// stream is identical to what a single queue would produce.
    seq: u64,
    /// Deadlines of cancelled-while-live timers. The previous engine
    /// left cancelled timers in the queue as tombstones that still
    /// popped (advancing the clock and `events_processed`); the wheel
    /// removes them in place. Counting the tombstones that would have
    /// popped keeps `events_processed` — which committed campaign
    /// artifacts record — bit-identical across the engine swap.
    ghost_deadlines: Vec<SimTime>,
    arena: PacketArena<P>,
    kinds: Vec<NodeKind>,
    channels: Vec<Channel<P>>,
    /// Outgoing edges per node, for route computation.
    adjacency: Vec<Vec<(NodeId, ChannelId)>>,
    routes: RouteTable,
    routes_built: bool,
    delivered_pkts: u64,
    delivered_bytes: u64,
    injected_pkts: u64,
    dropped_pkts: u64,
    /// Scheduled-but-not-yet-popped `Arrival` events; kept as a counter so
    /// audits are O(1) instead of scanning the event heap.
    pending_arrivals: u64,
    /// Events dispatched since the start of the simulation (the basis of
    /// events/sec throughput metrics).
    events_processed: u64,
    next_uid: u64,
    /// Cached `!monitors.is_empty()`; the one branch every emission site
    /// pays when monitoring is detached.
    monitors_on: bool,
    ptrace: Option<PacketTrace>,
    monitors: Vec<Box<dyn InvariantMonitor>>,
}

impl<P: Payload> Core<P> {
    /// Hands an event to every attached monitor. The cached flag check
    /// is the "cheap enable flag": with no monitors attached this is a
    /// single branch.
    fn emit(&mut self, ev: MonitorEvent) {
        if !self.monitors_on {
            return;
        }
        let at = self.now;
        for m in &mut self.monitors {
            m.observe(at, &ev);
        }
    }

    /// The engine's own packet accounting: injected/delivered/dropped
    /// counters plus the current in-flight population (queued packets and
    /// pending `Arrival` events, i.e. packets on the wire).
    fn audit(&self) -> AuditStats {
        AuditStats {
            injected: self.injected_pkts,
            delivered: self.delivered_pkts,
            dropped: self.dropped_pkts,
            queued_pkts: self.channels.iter().map(|c| c.queue.len() as u64).sum(),
            pending_arrivals: self.pending_arrivals,
            arena_live: self.arena.live() as u64,
        }
    }

    #[inline]
    fn schedule(&mut self, at: SimTime, ev: Ev) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.seq += 1;
        self.events.push_with_seq(at, self.seq, ev);
    }

    /// Takes a packet off a queue's head and puts it on the wire:
    /// transmitter busy for the serialization time, arrival at the far end
    /// after serialization + propagation. The packet parks in the arena
    /// until its `Arrival` pops.
    #[inline]
    fn transmit(&mut self, ch: ChannelId, now: SimTime, pkt: Packet<P>) {
        let c = &self.channels[ch.index()];
        let ser = c.bandwidth.serialization_time(pkt.size);
        let delay = c.delay;
        let to = c.to;
        let (flow, uid) = (pkt.flow, pkt.uid);
        let pkt = self.arena.alloc(pkt);
        self.pending_arrivals += 1;
        self.schedule(now + ser, Ev::TxDone { ch });
        self.schedule(now + ser + delay, Ev::Arrival { node: to, pkt });
        self.emit(MonitorEvent::Dequeued {
            channel: ch,
            flow,
            uid,
        });
    }

    fn set_timer(&mut self, node: NodeId, delay: Dur, token: u64) -> TimerId {
        self.seq += 1;
        TimerId(
            self.wheel
                .schedule(self.now + delay, self.seq, (node, token)),
        )
    }

    fn cancel_timer(&mut self, id: TimerId) {
        // A live cancel leaves the tombstone the old engine would have
        // popped; a stale cancel (fired or already cancelled) was a
        // no-op there too — the tombstone id could never pop twice.
        if let Some(at) = self.wheel.cancel(id.0) {
            self.ghost_deadlines.push(at);
        }
    }

    /// The per-event bookkeeping the run loop performs before handling
    /// any event, in the exact order the engine has always done it:
    /// clock emission (observed at the *previous* instant), clock
    /// advance, event count.
    #[inline]
    fn step_clock(&mut self, at: SimTime) {
        if self.monitors_on {
            self.emit(MonitorEvent::Clock { to: at });
        }
        self.now = at;
        self.events_processed += 1;
    }

    /// Delivery bookkeeping for a packet that terminated at host `node`:
    /// engine counters, packet trace, and the `Delivered` monitor event.
    fn note_delivery(&mut self, node: NodeId, pkt: &Packet<P>) {
        self.delivered_pkts += 1;
        self.delivered_bytes += pkt.size as u64;
        if let Some(t) = &mut self.ptrace {
            t.record(PacketEvent {
                at: self.now,
                kind: PacketEventKind::Delivered { node },
                src: pkt.src,
                dst: pkt.dst,
                flow: pkt.flow,
                size: pkt.size,
            });
        }
        if self.monitors_on {
            self.emit(MonitorEvent::Delivered {
                node,
                flow: pkt.flow,
                uid: pkt.uid,
                size: pkt.size,
            });
        }
    }

    /// Accounts for an enqueue that dropped the packet (capacity, RED, or
    /// injected fault). Returns `true` when the packet was dropped.
    #[allow(clippy::too_many_arguments)]
    fn note_enqueue_drop(
        &mut self,
        ch: ChannelId,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        flow: FlowId,
        size: u32,
        uid: u64,
        outcome: crate::queue::EnqueueOutcome,
    ) -> bool {
        let early_avg = match outcome {
            crate::queue::EnqueueOutcome::Accepted => return false,
            crate::queue::EnqueueOutcome::Dropped => None,
            crate::queue::EnqueueOutcome::EarlyDropped { avg_queue } => Some(avg_queue),
        };
        self.dropped_pkts += 1;
        if let Some(t) = &mut self.ptrace {
            t.record(PacketEvent {
                at: now,
                kind: PacketEventKind::Dropped { channel: ch },
                src,
                dst,
                flow,
                size,
            });
        }
        self.emit(MonitorEvent::Dropped {
            channel: ch,
            flow,
            uid,
            size,
        });
        if let Some(avg_queue) = early_avg {
            self.emit(MonitorEvent::AqmEarlyDrop {
                channel: ch,
                flow,
                uid,
                size,
                avg_queue,
            });
        }
        true
    }

    /// Accounts for packets a CoDel queue dropped during a dequeue:
    /// engine drop counter, packet trace, and the `Dropped` +
    /// `SojournDrop` monitor events, in queue order.
    fn drain_sojourn_drops(&mut self, ch: ChannelId, now: SimTime) {
        if !self.channels[ch.index()].queue.has_sojourn_drops() {
            return;
        }
        let drops = self.channels[ch.index()].queue.take_sojourn_drops();
        for d in drops {
            let (src, dst, flow, size, uid) =
                (d.pkt.src, d.pkt.dst, d.pkt.flow, d.pkt.size, d.pkt.uid);
            self.dropped_pkts += 1;
            if let Some(t) = &mut self.ptrace {
                t.record(PacketEvent {
                    at: now,
                    kind: PacketEventKind::Dropped { channel: ch },
                    src,
                    dst,
                    flow,
                    size,
                });
            }
            self.emit(MonitorEvent::Dropped {
                channel: ch,
                flow,
                uid,
                size,
            });
            self.emit(MonitorEvent::SojournDrop {
                channel: ch,
                flow,
                uid,
                size,
                sojourn_ns: d.sojourn.as_nanos(),
            });
        }
    }

    /// Hands a packet to a channel: straight to the transmitter when idle,
    /// into the queue otherwise (dropped when full).
    fn channel_send(&mut self, ch: ChannelId, now: SimTime, pkt: Packet<P>) {
        let (src, dst, flow, size, uid) = (pkt.src, pkt.dst, pkt.flow, pkt.size, pkt.uid);
        let c = &mut self.channels[ch.index()];
        let cap_pkts = match c.queue.config().capacity {
            QueueCapacity::Packets(n) => Some(n),
            QueueCapacity::Bytes(_) => None,
        };
        if c.busy {
            let outcome = c.queue.enqueue(now, pkt);
            if !self.note_enqueue_drop(ch, now, src, dst, flow, size, uid, outcome)
                && self.monitors_on
            {
                let len_after = self.channels[ch.index()].queue.len();
                self.emit(MonitorEvent::Enqueued {
                    channel: ch,
                    flow,
                    uid,
                    len_after,
                    cap_pkts,
                });
            }
            return;
        }
        // Count packets that bypass the queue in the queue stats so that
        // enqueue/dequeued reflect every packet offered to the channel.
        // The enqueue can still fail (zero capacity, injected fault).
        let outcome = c.queue.enqueue(now, pkt);
        if self.note_enqueue_drop(ch, now, src, dst, flow, size, uid, outcome) {
            return;
        }
        if self.monitors_on {
            let len_after = self.channels[ch.index()].queue.len();
            self.emit(MonitorEvent::Enqueued {
                channel: ch,
                flow,
                uid,
                len_after,
                cap_pkts,
            });
        }
        let c = &mut self.channels[ch.index()];
        c.busy = true;
        // CoDel never drops the last remaining packet, so the dequeue
        // directly after a successful enqueue always yields one.
        let head = c.queue.dequeue(now).expect("just enqueued"); // trim-lint: allow(no-panic-in-library, reason = "dequeue directly follows the enqueue in this call")
        self.transmit(ch, now, head);
    }

    fn on_tx_done(&mut self, ch: ChannelId) {
        let now = self.now;
        let c = &mut self.channels[ch.index()];
        let head = c.queue.dequeue(now);
        // CoDel may have dropped queued packets during that dequeue;
        // account for them before the survivor's `Dequeued` event.
        self.drain_sojourn_drops(ch, now);
        match head {
            Some(pkt) => self.transmit(ch, now, pkt),
            None => self.channels[ch.index()].busy = false,
        }
    }

    /// Routes a packet out of `node` toward `pkt.dst`.
    ///
    /// # Panics
    ///
    /// Panics if the destination is unreachable from `node`.
    fn forward(&mut self, node: NodeId, pkt: Packet<P>) {
        let ch = self.route_out(node, pkt.dst, pkt.flow);
        self.channel_send(ch, self.now, pkt);
    }

    /// Picks the outgoing channel for `(node → dst)`, applying
    /// deterministic per-flow ECMP over the equal-cost set.
    fn route_out(&self, node: NodeId, dst: NodeId, flow: FlowId) -> ChannelId {
        if self.kinds[dst.index()] != NodeKind::Host {
            panic!("no route from {node} to {dst}"); // trim-lint: allow(no-panic-in-library, reason = "documented panic: routing to a switch is a topology construction bug")
        }
        let r = &self.routes;
        let u = node.index();
        // Direct-neighbor fast path: a one-hop route is strictly shorter
        // than anything via a switch, so the equal-cost set is exactly
        // the parallel edges to dst.
        if let Some(set) = r.neighbor_edges[u].get(&dst.index_u32()) {
            return match set.len() {
                1 => set[0],
                n => set[(ecmp_hash(flow) % n as u64) as usize],
            };
        }
        // Remote destination: equal-cost next hops are the switch
        // neighbors whose distance to dst is minimal. (A host neighbor
        // can only be on a shortest path as the destination itself,
        // which the fast path already handled.)
        let sn = &r.switch_neighbors[u];
        let mut best = u32::MAX;
        let mut count = 0u64;
        for &(v, _) in sn {
            let d = r.dist[r.switch_row[v as usize] as usize][dst.index()];
            if d < best {
                best = d;
                count = 1;
            } else if d == best {
                count += 1;
            }
        }
        if best == u32::MAX {
            panic!("no route from {node} to {dst}"); // trim-lint: allow(no-panic-in-library, reason = "documented panic: a disconnected topology is a construction bug")
        }
        let choice = if count == 1 {
            0
        } else {
            ecmp_hash(flow) % count
        };
        let mut seen = 0u64;
        for &(v, ch) in sn {
            if r.dist[r.switch_row[v as usize] as usize][dst.index()] == best {
                if seen == choice {
                    return ch;
                }
                seen += 1;
            }
        }
        unreachable!("equal-cost set smaller than counted")
    }

    fn build_routes(&mut self) {
        let n = self.kinds.len();
        let mut switch_row = vec![u32::MAX; n];
        let mut rows = 0u32;
        for (i, k) in self.kinds.iter().enumerate() {
            if *k == NodeKind::Switch {
                switch_row[i] = rows;
                rows += 1;
            }
        }
        // BFS from every switch over the topology, never expanding a
        // host: hosts are reachable endpoints but cannot be transited.
        let mut dist = Vec::with_capacity(rows as usize);
        let mut queue = VecDeque::new();
        for s in 0..n {
            if switch_row[s] == u32::MAX {
                continue;
            }
            let mut d = vec![u32::MAX; n];
            d[s] = 0;
            queue.clear();
            queue.push_back(s);
            while let Some(x) = queue.pop_front() {
                if self.kinds[x] == NodeKind::Host {
                    continue;
                }
                for &(v, _) in &self.adjacency[x] {
                    let vi = v.index();
                    if d[vi] == u32::MAX {
                        d[vi] = d[x] + 1;
                        queue.push_back(vi);
                    }
                }
            }
            dist.push(d);
        }
        let mut neighbor_edges = Vec::with_capacity(n);
        let mut switch_neighbors = Vec::with_capacity(n);
        for u in 0..n {
            let mut ne: FastHashMap<u32, Vec<ChannelId>> = FastHashMap::default();
            let mut sn = Vec::new();
            for &(v, ch) in &self.adjacency[u] {
                ne.entry(v.index_u32()).or_default().push(ch);
                if self.kinds[v.index()] == NodeKind::Switch {
                    sn.push((v.index_u32(), ch));
                }
            }
            neighbor_edges.push(ne);
            switch_neighbors.push(sn);
        }
        self.routes = RouteTable {
            switch_row,
            dist,
            neighbor_edges,
            switch_neighbors,
        };
        self.routes_built = true;
    }
}

/// Deterministic per-flow ECMP hash: splitmix64 of the flow label.
#[inline]
fn ecmp_hash(flow: FlowId) -> u64 {
    splitmix64(flow.0 ^ 0x9e37_79b9_7f4a_7c15)
}

fn splitmix64(x: u64) -> u64 {
    crate::hash::mix64(x)
}

impl NodeId {
    #[inline]
    fn index_u32(self) -> u32 {
        self.0
    }
}

/// The agent's view of the simulator during a callback: clock, packet
/// output, and timers.
pub struct Ctx<'a, P: Payload> {
    core: &'a mut Core<P>,
    node: NodeId,
}

impl<P: Payload> std::fmt::Debug for Ctx<'_, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("node", &self.node)
            .field("now", &self.core.now)
            .finish_non_exhaustive()
    }
}

impl<P: Payload> Ctx<'_, P> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// The node this agent is attached to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Sends a packet out of this host's uplink. Stamps `pkt.sent_at`
    /// and assigns the packet's engine-unique id.
    ///
    /// # Panics
    ///
    /// Panics if the destination is unreachable.
    pub fn send(&mut self, mut pkt: Packet<P>) {
        pkt.sent_at = self.core.now;
        self.core.next_uid += 1;
        pkt.uid = self.core.next_uid;
        self.core.injected_pkts += 1;
        if let Some(t) = &mut self.core.ptrace {
            t.record(PacketEvent {
                at: self.core.now,
                kind: PacketEventKind::Sent { node: self.node },
                src: pkt.src,
                dst: pkt.dst,
                flow: pkt.flow,
                size: pkt.size,
            });
        }
        if self.core.monitors_on {
            self.core.emit(MonitorEvent::Injected {
                node: self.node,
                flow: pkt.flow,
                uid: pkt.uid,
                size: pkt.size,
            });
        }
        self.core.forward(self.node, pkt);
    }

    /// Reports a protocol-level event (window update, probe transition)
    /// to any attached invariant monitors. A no-op — one branch — when
    /// no monitor is attached; see [`Ctx::monitoring`]. Prefer
    /// [`Ctx::emit_monitor_with`] when building the event costs anything.
    pub fn emit_monitor(&mut self, ev: MonitorEvent) {
        self.core.emit(ev);
    }

    /// Reports a protocol-level event, constructing it only when a
    /// monitor is attached. When monitoring is detached this is exactly
    /// one branch: the closure is never called, so its captures are
    /// never read and its event is never built.
    #[inline]
    pub fn emit_monitor_with(&mut self, f: impl FnOnce() -> MonitorEvent) {
        if self.core.monitors_on {
            let ev = f();
            self.core.emit(ev);
        }
    }

    /// Whether any invariant monitor is attached. Protocol code can use
    /// this to skip building expensive event payloads.
    pub fn monitoring(&self) -> bool {
        self.core.monitors_on
    }

    /// Schedules `on_timer(token)` after `delay`. Returns a handle for
    /// [`Ctx::cancel_timer`].
    pub fn set_timer(&mut self, delay: Dur, token: u64) -> TimerId {
        self.core.set_timer(self.node, delay, token)
    }

    /// Cancels a pending timer. Cancelling an already-fired timer is a
    /// harmless no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.core.cancel_timer(id);
    }
}

/// A packet-level discrete-event network simulator.
///
/// ```
/// use netsim::prelude::*;
///
/// // Two hosts joined by a switch; the sink counts what arrives.
/// let mut sim: Simulator<TagPayload> = Simulator::new();
/// let a = sim.add_host(Box::new(SinkAgent::default()));
/// let b = sim.add_host(Box::new(SinkAgent::default()));
/// let sw = sim.add_switch();
/// sim.connect(a, sw, Bandwidth::gbps(1), Dur::from_micros(50), QueueConfig::default());
/// sim.connect(b, sw, Bandwidth::gbps(1), Dur::from_micros(50), QueueConfig::default());
/// sim.inject(a, Packet::new(a, b, FlowId(1), 1460, TagPayload(0)));
/// sim.run();
/// let sink: &SinkAgent = sim.host(b);
/// assert_eq!(sink.received, 1);
/// ```
pub struct Simulator<P: Payload> {
    core: Core<P>,
    agents: Vec<Option<Box<dyn Agent<P>>>>,
    started: bool,
}

impl<P: Payload> std::fmt::Debug for Simulator<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.core.now)
            .field("nodes", &self.core.kinds.len())
            .field("channels", &self.core.channels.len())
            .field("pending_events", &self.core.events.len())
            .finish_non_exhaustive()
    }
}

impl<P: Payload> Default for Simulator<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Payload> Simulator<P> {
    /// Creates an empty network.
    pub fn new() -> Self {
        Simulator {
            core: Core {
                now: SimTime::ZERO,
                events: EventQueue::new(),
                wheel: TimerWheel::new(),
                seq: 0,
                ghost_deadlines: Vec::new(),
                arena: PacketArena::new(),
                kinds: Vec::new(),
                channels: Vec::new(),
                adjacency: Vec::new(),
                routes: RouteTable::default(),
                routes_built: false,
                delivered_pkts: 0,
                delivered_bytes: 0,
                injected_pkts: 0,
                dropped_pkts: 0,
                pending_arrivals: 0,
                events_processed: 0,
                next_uid: 0,
                monitors_on: false,
                ptrace: None,
                monitors: Vec::new(),
            },
            agents: Vec::new(),
            started: false,
        }
    }

    /// Adds a host running `agent`. Hosts terminate packets; they are the
    /// only valid packet sources and destinations.
    pub fn add_host(&mut self, agent: Box<dyn Agent<P>>) -> NodeId {
        let id = NodeId(self.core.kinds.len() as u32);
        self.core.kinds.push(NodeKind::Host);
        self.core.adjacency.push(Vec::new());
        self.agents.push(Some(agent));
        id
    }

    /// Adds a store-and-forward switch. Forwarding uses shortest paths with
    /// deterministic per-flow ECMP over equal-cost next hops.
    pub fn add_switch(&mut self) -> NodeId {
        let id = NodeId(self.core.kinds.len() as u32);
        self.core.kinds.push(NodeKind::Switch);
        self.core.adjacency.push(Vec::new());
        self.agents.push(None);
        id
    }

    /// Connects `a` and `b` with a duplex link: two channels sharing the
    /// same rate, delay, and queue configuration. Returns `(a->b, b->a)`.
    ///
    /// # Panics
    ///
    /// Panics if called after the simulation has started.
    pub fn connect(
        &mut self,
        a: NodeId,
        b: NodeId,
        bandwidth: Bandwidth,
        delay: Dur,
        queue: QueueConfig,
    ) -> (ChannelId, ChannelId) {
        assert!(!self.started, "cannot modify topology after start");
        let ab = ChannelId(self.core.channels.len() as u32);
        self.core
            .channels
            .push(Channel::new(b, bandwidth, delay, queue));
        self.core.adjacency[a.index()].push((b, ab));
        let ba = ChannelId(self.core.channels.len() as u32);
        self.core
            .channels
            .push(Channel::new(a, bandwidth, delay, queue));
        self.core.adjacency[b.index()].push((a, ba));
        self.core.routes_built = false;
        (ab, ba)
    }

    /// Injects a packet from `src`'s network layer at the current time, as
    /// if its agent had sent it. Useful for tests and simple examples.
    pub fn inject(&mut self, src: NodeId, pkt: Packet<P>) {
        self.ensure_ready();
        let mut pkt = pkt;
        pkt.sent_at = self.core.now;
        self.core.next_uid += 1;
        pkt.uid = self.core.next_uid;
        self.core.injected_pkts += 1;
        if let Some(t) = &mut self.core.ptrace {
            t.record(PacketEvent {
                at: self.core.now,
                kind: PacketEventKind::Sent { node: src },
                src: pkt.src,
                dst: pkt.dst,
                flow: pkt.flow,
                size: pkt.size,
            });
        }
        if self.core.monitors_on {
            self.core.emit(MonitorEvent::Injected {
                node: src,
                flow: pkt.flow,
                uid: pkt.uid,
                size: pkt.size,
            });
        }
        self.core.forward(src, pkt);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Total packets delivered to host agents so far.
    pub fn delivered_packets(&self) -> u64 {
        self.core.delivered_pkts
    }

    /// Total bytes delivered to host agents so far.
    pub fn delivered_bytes(&self) -> u64 {
        self.core.delivered_bytes
    }

    /// Events dispatched since the start of the simulation. Divided by
    /// wall time this is the engine's events/sec throughput, the metric
    /// the perf-regression layer tracks.
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed
    }

    /// Packets currently resident in the packet arena (on the wire or in
    /// a transmitter). Equals `pending_arrivals` at all times and zero
    /// after a drained run; see [`crate::arena::PacketArena`].
    pub fn arena_live(&self) -> usize {
        self.core.arena.live()
    }

    /// Peak concurrent arena population over the run, i.e. the maximum
    /// number of packets simultaneously on the wire.
    pub fn arena_high_water(&self) -> usize {
        self.core.arena.high_water()
    }

    /// Statistics of a channel's queue, with the occupancy integral settled
    /// up to the current time.
    pub fn queue_stats(&mut self, ch: ChannelId) -> QueueStats {
        let now = self.core.now;
        let q = &mut self.core.channels[ch.index()].queue;
        q.settle(now);
        q.stats()
    }

    /// Starts recording (time, length) samples on a channel's queue.
    pub fn enable_queue_recording(&mut self, ch: ChannelId) {
        self.core.channels[ch.index()].queue.enable_recording();
    }

    /// Fault injection: deterministically drop the packets whose 0-based
    /// arrival index at channel `ch` is in `indices`. See
    /// [`crate::queue::DropTailQueue::inject_drops`].
    pub fn inject_channel_drops(&mut self, ch: ChannelId, indices: impl IntoIterator<Item = u64>) {
        self.core.channels[ch.index()].queue.inject_drops(indices);
    }

    /// Fault injection: lets channel `ch`'s queue admit up to `extra`
    /// packets beyond its configured capacity. Exists so the invariant
    /// monitors' queue-bound check can be proven to catch a real
    /// over-admission; see
    /// [`crate::queue::DropTailQueue::inject_overadmit`].
    pub fn inject_queue_overadmit(&mut self, ch: ChannelId, extra: u64) {
        self.core.channels[ch.index()].queue.inject_overadmit(extra);
    }

    /// Attaches a runtime invariant monitor. Monitors observe the event
    /// stream without influencing it, so attaching any number of them
    /// cannot change simulation results.
    pub fn attach_monitor(&mut self, monitor: Box<dyn InvariantMonitor>) {
        self.core.monitors.push(monitor);
        self.core.monitors_on = true;
    }

    /// Whether any invariant monitor is attached.
    pub fn monitors_enabled(&self) -> bool {
        self.core.monitors_on
    }

    /// All violations recorded so far, across every attached monitor.
    pub fn violations(&self) -> Vec<&Violation> {
        self.core
            .monitors
            .iter()
            .flat_map(|m| m.violations().iter())
            .collect()
    }

    /// Panics with a full report if any attached monitor recorded a
    /// violation. A no-op when no monitors are attached.
    ///
    /// # Panics
    ///
    /// Panics when at least one violation was recorded, listing every
    /// violation with its simulation time and flow.
    pub fn assert_no_violations(&self) {
        let violations = self.violations();
        assert!(
            violations.is_empty(),
            "{} invariant violation(s):\n{}",
            violations.len(),
            violations
                .iter()
                .map(|v| format!("  {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// The engine's packet accounting at the current instant; the basis
    /// of the packet-conservation invariant (`injected == delivered +
    /// dropped + in_flight`).
    pub fn audit_stats(&self) -> AuditStats {
        self.core.audit()
    }

    /// Starts recording a packet-event trace (sends, deliveries, drops),
    /// keeping at most `cap` events.
    pub fn enable_packet_trace(&mut self, cap: usize) {
        if self.core.ptrace.is_none() {
            self.core.ptrace = Some(PacketTrace::new(cap));
        }
    }

    /// The packet-event trace, if enabled.
    pub fn packet_trace(&self) -> Option<&PacketTrace> {
        self.core.ptrace.as_ref()
    }

    /// The recorded queue-length series of a channel, if enabled.
    pub fn queue_samples(&self, ch: ChannelId) -> Option<&[QueueSample]> {
        self.core.channels[ch.index()].queue.samples()
    }

    /// Borrows the agent at `node`, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if `node` is a switch or the agent is not a `T`.
    pub fn host<T: Agent<P>>(&self, node: NodeId) -> &T {
        let agent = self.agents[node.index()]
            .as_ref()
            .expect("node is a switch, not a host"); // trim-lint: allow(no-panic-in-library, reason = "documented panic: typed accessor misuse is a caller bug")
        (agent.as_ref() as &dyn Any)
            .downcast_ref::<T>()
            .expect("agent has a different concrete type") // trim-lint: allow(no-panic-in-library, reason = "documented panic: typed accessor misuse is a caller bug")
    }

    /// Mutably borrows the agent at `node`, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if `node` is a switch or the agent is not a `T`.
    pub fn host_mut<T: Agent<P>>(&mut self, node: NodeId) -> &mut T {
        let agent = self.agents[node.index()]
            .as_mut()
            .expect("node is a switch, not a host"); // trim-lint: allow(no-panic-in-library, reason = "documented panic: typed accessor misuse is a caller bug")
        (agent.as_mut() as &mut dyn Any)
            .downcast_mut::<T>()
            .expect("agent has a different concrete type") // trim-lint: allow(no-panic-in-library, reason = "documented panic: typed accessor misuse is a caller bug")
    }

    fn ensure_ready(&mut self) {
        if !self.core.routes_built {
            self.core.build_routes();
        }
        if !self.started {
            self.started = true;
            for i in 0..self.agents.len() {
                if let Some(mut agent) = self.agents[i].take() {
                    let mut ctx = Ctx {
                        core: &mut self.core,
                        node: NodeId(i as u32),
                    };
                    agent.on_start(&mut ctx);
                    self.agents[i] = Some(agent);
                }
            }
        }
    }

    /// Runs until the event queue is exhausted.
    pub fn run(&mut self) {
        self.run_until(SimTime::MAX);
    }

    /// Processes every event with timestamp `<= horizon`, then advances the
    /// clock to `horizon` (when finite) so statistics settle consistently.
    ///
    /// Events come from two sources — the event queue (packets, links)
    /// and the timing wheel (timers) — merged by `(time, seq)`. Both
    /// draw sequence numbers from one global counter, so the merge is a
    /// total order identical to the single-queue engine's pop order.
    pub fn run_until(&mut self, horizon: SimTime) {
        self.ensure_ready();
        loop {
            let timer_first = match (self.core.events.peek_key(), self.core.wheel.peek_key()) {
                (None, None) => break,
                (Some(e), None) => {
                    if e.0 > horizon {
                        break;
                    }
                    false
                }
                (None, Some(w)) => {
                    if w.0 > horizon {
                        break;
                    }
                    true
                }
                (Some(e), Some(w)) => {
                    if e.0.min(w.0) > horizon {
                        break;
                    }
                    w < e
                }
            };
            if timer_first {
                self.fire_timer_batch();
            } else {
                self.process_event();
            }
        }
        // The old engine popped cancelled timers as tombstones; see
        // `Core::ghost_deadlines`. Count the ones this horizon covers.
        let mut ghost_pops = 0u64;
        self.core.ghost_deadlines.retain(|&at| {
            if at <= horizon {
                ghost_pops += 1;
                false
            } else {
                true
            }
        });
        self.core.events_processed += ghost_pops;
        if horizon != SimTime::MAX && horizon > self.core.now {
            self.core.now = horizon;
        }
        if self.core.monitors_on {
            let audit = self.core.audit();
            let at = self.core.now;
            let mut monitors = std::mem::take(&mut self.core.monitors);
            for m in &mut monitors {
                m.finalize(at, &audit);
            }
            self.core.monitors = monitors;
        }
    }

    /// Pops and dispatches the minimal timer, keeping its host's agent
    /// checked out while further timers for the same node at the same
    /// instant are next in the merged order — same-tick batching, so a
    /// fan-in burst of RTO/delayed-ACK deadlines touches each host once
    /// per tick. Every per-event step (clock emission, clock advance,
    /// event count) still happens inside the loop in merge order, so a
    /// batched run is observationally identical to an unbatched one.
    fn fire_timer_batch(&mut self) {
        let Some((at, _seq, (node, token))) = self.core.wheel.pop() else {
            return;
        };
        self.core.step_clock(at);
        let mut agent = self.agents[node.index()]
            .take()
            .expect("timer delivered to switch"); // trim-lint: allow(no-panic-in-library, reason = "timers are only ever set by host agents; a switch timer is engine corruption")
        let mut ctx = Ctx {
            core: &mut self.core,
            node,
        };
        agent.on_timer(&mut ctx, token);
        while let Some((wat, wseq, (wnode, wtoken))) = self.core.wheel.peek() {
            if wat != at || wnode != node {
                break;
            }
            // A packet/link event with a smaller key preempts the batch.
            if let Some(ek) = self.core.events.peek_key() {
                if ek < (wat, wseq) {
                    break;
                }
            }
            self.core.wheel.pop();
            self.core.step_clock(wat);
            let mut ctx = Ctx {
                core: &mut self.core,
                node,
            };
            agent.on_timer(&mut ctx, wtoken);
        }
        self.agents[node.index()] = Some(agent);
    }

    /// Pops and handles the minimal packet/link event. Same-instant
    /// arrivals to the same host batch under one agent checkout, exactly
    /// like [`Self::fire_timer_batch`].
    fn process_event(&mut self) {
        let Some((at, ev)) = self.core.events.pop() else {
            return;
        };
        // Timers are strictly later than this event, so the wheel's
        // placement windows can advance to the present.
        self.core.wheel.advance_to(at);
        self.core.step_clock(at);
        match ev {
            Ev::TxDone { ch } => self.core.on_tx_done(ch),
            Ev::Arrival { node, pkt } => {
                self.core.pending_arrivals -= 1;
                let pkt = self.core.arena.free(pkt);
                match self.core.kinds[node.index()] {
                    NodeKind::Switch => self.core.forward(node, pkt),
                    NodeKind::Host => self.deliver_batch(node, at, pkt),
                }
            }
        }
    }

    /// Delivers `first` to host `node` and keeps the agent checked out
    /// while further arrivals for the same host at the same instant are
    /// next in the merged order.
    fn deliver_batch(&mut self, node: NodeId, at: SimTime, first: Packet<P>) {
        self.core.note_delivery(node, &first);
        let mut agent = self.agents[node.index()]
            .take()
            .expect("packet delivered to switch"); // trim-lint: allow(no-panic-in-library, reason = "the caller matched NodeKind::Host for this node")
        let mut ctx = Ctx {
            core: &mut self.core,
            node,
        };
        agent.on_packet(&mut ctx, first);
        loop {
            let next_is_same = match self.core.events.peek() {
                Some((eat, eseq, Ev::Arrival { node: n, .. })) if eat == at && *n == node => {
                    // A timer with a smaller key preempts the batch.
                    !matches!(self.core.wheel.peek_key(), Some(wk) if wk < (eat, eseq))
                }
                _ => false,
            };
            if !next_is_same {
                break;
            }
            match self.core.events.pop() {
                Some((_, Ev::Arrival { pkt, .. })) => {
                    self.core.step_clock(at);
                    self.core.pending_arrivals -= 1;
                    let pkt = self.core.arena.free(pkt);
                    self.core.note_delivery(node, &pkt);
                    let mut ctx = Ctx {
                        core: &mut self.core,
                        node,
                    };
                    agent.on_packet(&mut ctx, pkt);
                }
                _ => break, // unreachable: peeked an Arrival above
            }
        }
        self.agents[node.index()] = Some(agent);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::SinkAgent;
    use crate::packet::{FlowId, TagPayload};

    fn star(n_senders: usize) -> (Simulator<TagPayload>, Vec<NodeId>, NodeId, ChannelId) {
        let mut sim = Simulator::new();
        let sw = sim.add_switch();
        let dst = sim.add_host(Box::new(SinkAgent::default()));
        let (_, sw_to_dst) = sim.connect(
            dst,
            sw,
            Bandwidth::gbps(1),
            Dur::from_micros(50),
            QueueConfig::default(),
        );
        let senders = (0..n_senders)
            .map(|_| {
                let h = sim.add_host(Box::new(SinkAgent::default()));
                sim.connect(
                    h,
                    sw,
                    Bandwidth::gbps(1),
                    Dur::from_micros(50),
                    QueueConfig::default(),
                );
                h
            })
            .collect();
        (sim, senders, dst, sw_to_dst)
    }

    #[test]
    fn single_packet_latency() {
        let (mut sim, senders, dst, _) = star(1);
        sim.inject(
            senders[0],
            Packet::new(senders[0], dst, FlowId(1), 1460, TagPayload(0)),
        );
        sim.run();
        // ser(11.68us) + prop(50us) at each of the 2 hops = 123.36us.
        assert_eq!(sim.now(), SimTime::from_nanos(123_360));
        assert_eq!(sim.host::<SinkAgent>(dst).received, 1);
        assert_eq!(sim.host::<SinkAgent>(dst).received_bytes, 1460);
    }

    #[test]
    fn back_to_back_packets_serialize() {
        let (mut sim, senders, dst, _) = star(1);
        for _ in 0..3 {
            sim.inject(
                senders[0],
                Packet::new(senders[0], dst, FlowId(1), 1460, TagPayload(0)),
            );
        }
        sim.run();
        // Last packet leaves the first link at 3*ser, arrives at the switch
        // at 3*ser + 50us, then 1*ser + 50us more (switch queue drains in
        // lockstep with arrivals because the rates match).
        assert_eq!(sim.host::<SinkAgent>(dst).received, 3);
        assert_eq!(
            sim.now(),
            SimTime::from_nanos(3 * 11_680 + 50_000 + 11_680 + 50_000)
        );
    }

    #[test]
    fn congestion_drops_at_bottleneck() {
        // 5 senders each blast 50 packets at t=0; bottleneck queue is 20.
        let mut sim = Simulator::new();
        let sw = sim.add_switch();
        let dst = sim.add_host(Box::new(SinkAgent::default()));
        let (_, sw_to_dst) = sim.connect(
            dst,
            sw,
            Bandwidth::gbps(1),
            Dur::from_micros(50),
            QueueConfig::drop_tail(20),
        );
        let mut senders = Vec::new();
        for _ in 0..5 {
            let h = sim.add_host(Box::new(SinkAgent::default()));
            sim.connect(
                h,
                sw,
                Bandwidth::gbps(1),
                Dur::from_micros(50),
                QueueConfig::default(),
            );
            senders.push(h);
        }
        for &s in &senders {
            for _ in 0..50 {
                sim.inject(
                    s,
                    Packet::new(s, dst, FlowId(s.index() as u64), 1460, TagPayload(0)),
                );
            }
        }
        sim.run();
        let stats = sim.queue_stats(sw_to_dst);
        assert!(stats.dropped > 0, "bottleneck must overflow");
        assert_eq!(
            sim.host::<SinkAgent>(dst).received,
            250 - stats.dropped,
            "every packet is either delivered or dropped"
        );
        assert!(stats.max_len <= 20);
    }

    #[test]
    fn multi_hop_forwarding() {
        // h0 - sw0 - sw1 - h1
        let mut sim: Simulator<TagPayload> = Simulator::new();
        let h0 = sim.add_host(Box::new(SinkAgent::default()));
        let h1 = sim.add_host(Box::new(SinkAgent::default()));
        let sw0 = sim.add_switch();
        let sw1 = sim.add_switch();
        let cfg = QueueConfig::default();
        let bw = Bandwidth::gbps(1);
        let d = Dur::from_micros(10);
        sim.connect(h0, sw0, bw, d, cfg);
        sim.connect(sw0, sw1, bw, d, cfg);
        sim.connect(sw1, h1, bw, d, cfg);
        sim.inject(h0, Packet::new(h0, h1, FlowId(1), 1000, TagPayload(0)));
        sim.run();
        assert_eq!(sim.host::<SinkAgent>(h1).received, 1);
        // 3 hops: 3 * (8us ser + 10us prop).
        assert_eq!(sim.now(), SimTime::from_nanos(3 * 18_000));
    }

    /// An agent that echoes every packet back to its source.
    #[derive(Debug, Default)]
    struct EchoAgent;
    impl Agent<TagPayload> for EchoAgent {
        fn on_packet(&mut self, ctx: &mut Ctx<'_, TagPayload>, pkt: Packet<TagPayload>) {
            let reply = Packet::new(pkt.dst, pkt.src, pkt.flow, 40, pkt.payload);
            ctx.send(reply);
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, TagPayload>, _token: u64) {}
    }

    #[test]
    fn agents_can_reply() {
        let mut sim = Simulator::new();
        let sw = sim.add_switch();
        let client = sim.add_host(Box::new(SinkAgent::default()));
        let server = sim.add_host(Box::new(EchoAgent));
        let cfg = QueueConfig::default();
        sim.connect(client, sw, Bandwidth::gbps(1), Dur::from_micros(50), cfg);
        sim.connect(server, sw, Bandwidth::gbps(1), Dur::from_micros(50), cfg);
        sim.inject(
            client,
            Packet::new(client, server, FlowId(7), 1460, TagPayload(3)),
        );
        sim.run();
        assert_eq!(sim.host::<SinkAgent>(client).received, 1);
        assert_eq!(sim.host::<SinkAgent>(client).received_bytes, 40);
    }

    /// An agent that sets and cancels timers.
    #[derive(Debug, Default)]
    struct TimerAgent {
        fired: Vec<u64>,
    }
    impl Agent<TagPayload> for TimerAgent {
        fn on_start(&mut self, ctx: &mut Ctx<'_, TagPayload>) {
            ctx.set_timer(Dur::from_millis(1), 1);
            let t2 = ctx.set_timer(Dur::from_millis(2), 2);
            ctx.set_timer(Dur::from_millis(3), 3);
            ctx.cancel_timer(t2);
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_, TagPayload>, _pkt: Packet<TagPayload>) {}
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, TagPayload>, token: u64) {
            self.fired.push(token);
        }
    }

    #[test]
    fn timers_fire_in_order_and_cancel() {
        let mut sim: Simulator<TagPayload> = Simulator::new();
        let h = sim.add_host(Box::new(TimerAgent::default()));
        let s = sim.add_host(Box::new(SinkAgent::default()));
        sim.connect(
            h,
            s,
            Bandwidth::gbps(1),
            Dur::from_micros(1),
            QueueConfig::default(),
        );
        sim.run();
        assert_eq!(sim.host::<TimerAgent>(h).fired, vec![1, 3]);
        assert_eq!(sim.now(), SimTime::from_nanos(3_000_000));
    }

    #[test]
    fn run_until_stops_and_resumes() {
        let (mut sim, senders, dst, _) = star(1);
        sim.inject(
            senders[0],
            Packet::new(senders[0], dst, FlowId(1), 1460, TagPayload(0)),
        );
        sim.run_until(SimTime::from_nanos(100_000));
        assert_eq!(sim.host::<SinkAgent>(dst).received, 0);
        assert_eq!(sim.now(), SimTime::from_nanos(100_000));
        sim.run();
        assert_eq!(sim.host::<SinkAgent>(dst).received, 1);
    }

    #[test]
    fn ecmp_spreads_flows_across_equal_paths() {
        // h0 -- swA -- {sw1, sw2} -- swB -- h1: two equal-cost paths.
        let mut sim: Simulator<TagPayload> = Simulator::new();
        let h0 = sim.add_host(Box::new(SinkAgent::default()));
        let h1 = sim.add_host(Box::new(SinkAgent::default()));
        let swa = sim.add_switch();
        let sw1 = sim.add_switch();
        let sw2 = sim.add_switch();
        let swb = sim.add_switch();
        let cfg = QueueConfig::default();
        let bw = Bandwidth::gbps(1);
        let d = Dur::from_micros(1);
        sim.connect(h0, swa, bw, d, cfg);
        let (a1, _) = sim.connect(swa, sw1, bw, d, cfg);
        let (a2, _) = sim.connect(swa, sw2, bw, d, cfg);
        sim.connect(sw1, swb, bw, d, cfg);
        sim.connect(sw2, swb, bw, d, cfg);
        sim.connect(swb, h1, bw, d, cfg);
        for flow in 0..64 {
            sim.inject(h0, Packet::new(h0, h1, FlowId(flow), 1000, TagPayload(0)));
        }
        sim.run();
        assert_eq!(sim.host::<SinkAgent>(h1).received, 64);
        let via1 = sim.queue_stats(a1).enqueued;
        let via2 = sim.queue_stats(a2).enqueued;
        assert_eq!(via1 + via2, 64);
        assert!(via1 > 8 && via2 > 8, "both paths used: {via1}/{via2}");
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn unreachable_destination_panics() {
        let mut sim: Simulator<TagPayload> = Simulator::new();
        let h0 = sim.add_host(Box::new(SinkAgent::default()));
        let h1 = sim.add_host(Box::new(SinkAgent::default()));
        // No links at all.
        sim.inject(h0, Packet::new(h0, h1, FlowId(0), 100, TagPayload(0)));
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn switch_destination_panics() {
        let mut sim: Simulator<TagPayload> = Simulator::new();
        let h0 = sim.add_host(Box::new(SinkAgent::default()));
        let sw = sim.add_switch();
        sim.connect(
            h0,
            sw,
            Bandwidth::gbps(1),
            Dur::from_micros(1),
            QueueConfig::default(),
        );
        // Switches terminate nothing: only hosts are valid destinations.
        sim.inject(h0, Packet::new(h0, sw, FlowId(0), 100, TagPayload(0)));
    }

    /// Counts monitor events and records violations on demand; used to
    /// test the emission hooks themselves.
    #[derive(Debug, Default)]
    struct CountingMonitor {
        injected: u64,
        delivered: u64,
        dropped: u64,
        enqueued: u64,
        dequeued: u64,
        clock: u64,
        max_uid: u64,
        finalized: Vec<crate::monitor::AuditStats>,
        violations: Vec<crate::monitor::Violation>,
    }
    impl crate::monitor::InvariantMonitor for CountingMonitor {
        fn name(&self) -> &'static str {
            "counting"
        }
        fn observe(&mut self, _at: SimTime, ev: &MonitorEvent) {
            match ev {
                MonitorEvent::Clock { .. } => self.clock += 1,
                MonitorEvent::Injected { uid, .. } => {
                    self.injected += 1;
                    self.max_uid = self.max_uid.max(*uid);
                }
                MonitorEvent::Delivered { .. } => self.delivered += 1,
                MonitorEvent::Dropped { .. } => self.dropped += 1,
                MonitorEvent::Enqueued { .. } => self.enqueued += 1,
                MonitorEvent::Dequeued { .. } => self.dequeued += 1,
                _ => {}
            }
        }
        fn finalize(&mut self, _at: SimTime, audit: &crate::monitor::AuditStats) {
            self.finalized.push(*audit);
        }
        fn violations(&self) -> &[crate::monitor::Violation] {
            &self.violations
        }
    }

    #[test]
    fn monitors_see_every_packet_event_and_uids_are_unique() {
        let (mut sim, senders, dst, _) = star(2);
        sim.attach_monitor(Box::new(CountingMonitor::default()));
        assert!(sim.monitors_enabled());
        for (i, &s) in senders.iter().enumerate() {
            for _ in 0..5 {
                sim.inject(
                    s,
                    Packet::new(s, dst, FlowId(i as u64), 1460, TagPayload(0)),
                );
            }
        }
        sim.run();
        // Monitors are boxed inside the simulator; inspect through the
        // audit and violation APIs plus the engine counters.
        let audit = sim.audit_stats();
        assert_eq!(audit.injected, 10);
        assert_eq!(audit.delivered, 10);
        assert_eq!(audit.dropped, 0);
        assert_eq!(audit.in_flight(), 0);
        assert!(sim.violations().is_empty());
        sim.assert_no_violations();
    }

    /// A star with a small bottleneck queue and `n` senders blasting
    /// `per_sender` packets each at t=0, so the bottleneck overflows.
    fn congested_star(
        n: usize,
        cap: usize,
        per_sender: usize,
    ) -> (Simulator<TagPayload>, NodeId, ChannelId) {
        let mut sim = Simulator::new();
        let sw = sim.add_switch();
        let dst = sim.add_host(Box::new(SinkAgent::default()));
        let (_, sw_to_dst) = sim.connect(
            dst,
            sw,
            Bandwidth::gbps(1),
            Dur::from_micros(50),
            QueueConfig::drop_tail(cap),
        );
        let mut senders = Vec::new();
        for _ in 0..n {
            let h = sim.add_host(Box::new(SinkAgent::default()));
            sim.connect(
                h,
                sw,
                Bandwidth::gbps(1),
                Dur::from_micros(50),
                QueueConfig::default(),
            );
            senders.push(h);
        }
        for &s in &senders {
            for _ in 0..per_sender {
                sim.inject(
                    s,
                    Packet::new(s, dst, FlowId(s.index() as u64), 1460, TagPayload(0)),
                );
            }
        }
        (sim, dst, sw_to_dst)
    }

    #[test]
    fn audit_counts_dropped_packets() {
        let (mut sim, dst, _) = congested_star(5, 10, 20);
        sim.run();
        let audit = sim.audit_stats();
        assert_eq!(audit.injected, 100);
        assert!(audit.dropped > 0);
        assert_eq!(audit.delivered + audit.dropped, 100);
        assert_eq!(audit.in_flight(), 0);
        assert_eq!(audit.delivered, sim.host::<SinkAgent>(dst).received);
    }

    #[test]
    fn arena_is_empty_after_a_drained_run() {
        let (mut sim, dst, _) = congested_star(5, 10, 20);
        sim.run();
        assert_eq!(sim.arena_live(), 0, "every in-flight packet was freed");
        let audit = sim.audit_stats();
        assert_eq!(audit.arena_live, 0);
        assert_eq!(audit.pending_arrivals, 0);
        assert!(sim.arena_high_water() > 0, "packets did traverse the wire");
        assert_eq!(sim.host::<SinkAgent>(dst).received, audit.delivered);
    }

    #[test]
    fn arena_live_equals_pending_arrivals_mid_run() {
        let (mut sim, senders, dst, _) = star(3);
        for (i, &s) in senders.iter().enumerate() {
            for _ in 0..10 {
                sim.inject(
                    s,
                    Packet::new(s, dst, FlowId(i as u64), 1460, TagPayload(0)),
                );
            }
        }
        // Stop mid-flight: packets are on the wire at this instant.
        sim.run_until(SimTime::from_nanos(60_000));
        let audit = sim.audit_stats();
        assert_eq!(audit.arena_live, audit.pending_arrivals);
        assert!(audit.arena_live > 0, "horizon chosen mid-flight");
        sim.run();
        assert_eq!(sim.audit_stats().arena_live, 0);
    }

    #[test]
    fn events_processed_counts_dispatches() {
        let (mut sim, senders, dst, _) = star(1);
        sim.inject(
            senders[0],
            Packet::new(senders[0], dst, FlowId(1), 1460, TagPayload(0)),
        );
        sim.run();
        // One packet over two hops: 2 arrivals + 2 tx-done events.
        assert_eq!(sim.events_processed(), 4);
    }

    #[test]
    fn overadmit_fault_exceeds_capacity() {
        let (mut sim, dst, sw_to_dst) = congested_star(5, 3, 10);
        sim.inject_queue_overadmit(sw_to_dst, 2);
        sim.run();
        let stats = sim.queue_stats(sw_to_dst);
        assert_eq!(stats.max_len, 5, "3-capacity queue over-admitted by 2");
        assert_eq!(sim.host::<SinkAgent>(dst).received + stats.dropped, 50);
    }

    #[test]
    fn monitored_run_is_identical_to_unmonitored() {
        let run = |monitored: bool| {
            let (mut sim, senders, dst, ch) = star(3);
            if monitored {
                sim.attach_monitor(Box::new(CountingMonitor::default()));
            }
            for (i, &s) in senders.iter().enumerate() {
                for _ in 0..20 {
                    sim.inject(
                        s,
                        Packet::new(s, dst, FlowId(i as u64), 1460, TagPayload(0)),
                    );
                }
            }
            sim.run();
            (
                sim.now(),
                sim.host::<SinkAgent>(dst).received,
                sim.queue_stats(ch).max_len,
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn deterministic_event_order() {
        // Two identical runs deliver identical outcomes.
        let run = || {
            let (mut sim, senders, dst, ch) = star(3);
            for (i, &s) in senders.iter().enumerate() {
                for _ in 0..20 {
                    sim.inject(
                        s,
                        Packet::new(s, dst, FlowId(i as u64), 1460, TagPayload(0)),
                    );
                }
            }
            sim.run();
            (
                sim.now(),
                sim.host::<SinkAgent>(dst).received,
                sim.queue_stats(ch).max_len,
            )
        };
        assert_eq!(run(), run());
    }

    /// An agent that reports through `emit_monitor_with`, counting how
    /// many times its closure actually ran.
    #[derive(Debug, Default)]
    struct ClosureCountingAgent {
        closures_run: u64,
    }
    impl Agent<TagPayload> for ClosureCountingAgent {
        fn on_packet(&mut self, ctx: &mut Ctx<'_, TagPayload>, pkt: Packet<TagPayload>) {
            let runs = &mut self.closures_run;
            ctx.emit_monitor_with(|| {
                *runs += 1;
                MonitorEvent::CwndUpdate {
                    flow: pkt.flow,
                    cwnd: 1.0,
                    min_cwnd: 1.0,
                    max_cwnd: 64.0,
                }
            });
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, TagPayload>, _token: u64) {}
    }

    #[test]
    fn emit_monitor_with_skips_closure_when_detached() {
        let run = |monitored: bool| {
            let mut sim: Simulator<TagPayload> = Simulator::new();
            let sw = sim.add_switch();
            let src = sim.add_host(Box::new(SinkAgent::default()));
            let dst = sim.add_host(Box::new(ClosureCountingAgent::default()));
            let cfg = QueueConfig::default();
            sim.connect(src, sw, Bandwidth::gbps(1), Dur::from_micros(5), cfg);
            sim.connect(dst, sw, Bandwidth::gbps(1), Dur::from_micros(5), cfg);
            if monitored {
                sim.attach_monitor(Box::new(CountingMonitor::default()));
            }
            for i in 0..7 {
                sim.inject(src, Packet::new(src, dst, FlowId(i), 1000, TagPayload(0)));
            }
            sim.run();
            (
                sim.host::<ClosureCountingAgent>(dst).closures_run,
                sim.now(),
            )
        };
        let (unmon_closures, unmon_now) = run(false);
        let (mon_closures, mon_now) = run(true);
        assert_eq!(unmon_closures, 0, "detached run must build zero events");
        assert_eq!(mon_closures, 7, "monitored run builds one per packet");
        assert_eq!(unmon_now, mon_now, "monitoring never perturbs the run");
    }

    /// Arms two timers for the same deadline; the first fire cancels the
    /// second from inside `on_timer` — the cancel races the same-tick
    /// fire that is already next in the merged order.
    #[derive(Debug, Default)]
    struct RacingAgent {
        victim: Option<TimerId>,
        fired: Vec<u64>,
    }
    impl Agent<TagPayload> for RacingAgent {
        fn on_start(&mut self, ctx: &mut Ctx<'_, TagPayload>) {
            ctx.set_timer(Dur::from_micros(10), 1);
            self.victim = Some(ctx.set_timer(Dur::from_micros(10), 2));
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_, TagPayload>, _pkt: Packet<TagPayload>) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, TagPayload>, token: u64) {
            self.fired.push(token);
            if let Some(v) = self.victim.take() {
                ctx.cancel_timer(v);
            }
        }
    }

    /// Regression for the cancel-racing-same-tick-fire edge: a timer
    /// cancelled by an earlier fire at the same instant must not fire,
    /// and the engine must still count its ghost pop (the old
    /// tombstone-heap engine popped the cancelled entry, so
    /// `events_processed` includes it — committed goldens depend on it).
    #[test]
    fn cancel_racing_same_tick_fire_is_deterministic() {
        let mut sim: Simulator<TagPayload> = Simulator::new();
        let h = sim.add_host(Box::new(RacingAgent::default()));
        let _ = h;
        sim.run();
        assert_eq!(sim.host::<RacingAgent>(h).fired, vec![1]);
        // 1 real fire + 1 ghost pop of the same-tick victim.
        assert_eq!(sim.events_processed(), 2);
        assert_eq!(sim.now(), SimTime::from_nanos(10_000));
    }

    /// Cancels a handle whose timer already fired, after a later timer
    /// has been armed (which may recycle the fired timer's wheel slot).
    #[derive(Debug, Default)]
    struct StaleCancelAgent {
        first: Option<TimerId>,
        fired: Vec<u64>,
    }
    impl Agent<TagPayload> for StaleCancelAgent {
        fn on_start(&mut self, ctx: &mut Ctx<'_, TagPayload>) {
            self.first = Some(ctx.set_timer(Dur::from_micros(1), 1));
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_, TagPayload>, _pkt: Packet<TagPayload>) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, TagPayload>, token: u64) {
            self.fired.push(token);
            if token == 1 {
                // Arm the next timer first so it can recycle slot 0,
                // then cancel the stale handle of the fired timer.
                ctx.set_timer(Dur::from_micros(1), 2);
                let stale = self.first.take().expect("armed in on_start");
                ctx.cancel_timer(stale);
            }
        }
    }

    /// Regression for the ghost-cancel edge at the engine level: a stale
    /// `TimerId` (its timer already fired) must not kill a newly armed
    /// timer that recycled the wheel slot, and must not add a ghost pop.
    #[test]
    fn stale_cancel_cannot_kill_recycled_timer() {
        let mut sim: Simulator<TagPayload> = Simulator::new();
        let h = sim.add_host(Box::new(StaleCancelAgent::default()));
        sim.run();
        assert_eq!(sim.host::<StaleCancelAgent>(h).fired, vec![1, 2]);
        // 2 real fires, no ghosts: the stale cancel was a no-op.
        assert_eq!(sim.events_processed(), 2);
    }

    /// Ghost-pop accounting: the old engine popped cancelled timers as
    /// tombstones, counting them in `events_processed`; committed golden
    /// CSVs carry those counts, so the wheel engine must reproduce them.
    #[test]
    fn ghost_timer_pops_count_toward_events_processed() {
        let mut sim: Simulator<TagPayload> = Simulator::new();
        let h = sim.add_host(Box::new(TimerAgent::default()));
        sim.run();
        // TimerAgent arms 3 timers and cancels one: 2 fires + 1 ghost.
        assert_eq!(sim.host::<TimerAgent>(h).fired, vec![1, 3]);
        assert_eq!(sim.events_processed(), 3);
    }

    /// A cancelled timer past the stop horizon is NOT a ghost pop yet —
    /// the old engine would not have reached it either. It becomes one
    /// only when the horizon passes its deadline.
    #[test]
    fn ghost_pops_respect_the_run_horizon() {
        let mut sim: Simulator<TagPayload> = Simulator::new();
        let h = sim.add_host(Box::new(TimerAgent::default()));
        let _ = h;
        // TimerAgent cancels its 2ms timer. Stop at 1.5ms: only the 1ms
        // fire has happened; the ghost at 2ms is still pending.
        sim.run_until(SimTime::from_nanos(1_500_000));
        assert_eq!(sim.events_processed(), 1);
        // Crossing 2ms accounts the ghost; 3ms fires the last timer.
        sim.run_until(SimTime::from_nanos(2_500_000));
        assert_eq!(sim.events_processed(), 2);
        sim.run();
        assert_eq!(sim.events_processed(), 3);
        assert_eq!(sim.host::<TimerAgent>(h).fired, vec![1, 3]);
    }

    /// Arms `n` timers for one deadline with ascending tokens.
    #[derive(Debug, Default)]
    struct FifoTimerAgent {
        n: u64,
        fired: Vec<u64>,
    }
    impl Agent<TagPayload> for FifoTimerAgent {
        fn on_start(&mut self, ctx: &mut Ctx<'_, TagPayload>) {
            for token in 0..self.n {
                ctx.set_timer(Dur::from_micros(25), token);
            }
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_, TagPayload>, _pkt: Packet<TagPayload>) {}
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, TagPayload>, token: u64) {
            self.fired.push(token);
        }
    }

    /// Same-deadline timers on one host fire in arm order (the batched
    /// fire path keeps the agent checked out across the whole tick).
    #[test]
    fn same_deadline_timer_batch_fires_in_fifo_order() {
        let mut sim: Simulator<TagPayload> = Simulator::new();
        let h = sim.add_host(Box::new(FifoTimerAgent {
            n: 5,
            ..Default::default()
        }));
        sim.run();
        assert_eq!(sim.host::<FifoTimerAgent>(h).fired, vec![0, 1, 2, 3, 4]);
        assert_eq!(sim.events_processed(), 5);
    }

    /// Records the arrival order of packet flow ids.
    #[derive(Debug, Default)]
    struct RecordingAgent {
        seen: Vec<u64>,
    }
    impl Agent<TagPayload> for RecordingAgent {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_, TagPayload>, pkt: Packet<TagPayload>) {
            self.seen.push(pkt.flow.0);
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, TagPayload>, _token: u64) {}
    }

    /// Two same-instant arrivals on one host (over two direct links with
    /// identical latency) are delivered in injection-sequence order by
    /// the batched delivery path.
    #[test]
    fn same_instant_arrivals_deliver_in_sequence_order() {
        let mut sim: Simulator<TagPayload> = Simulator::new();
        let dst = sim.add_host(Box::new(RecordingAgent::default()));
        let s0 = sim.add_host(Box::new(SinkAgent::default()));
        let s1 = sim.add_host(Box::new(SinkAgent::default()));
        let cfg = QueueConfig::default();
        sim.connect(s0, dst, Bandwidth::gbps(1), Dur::from_micros(50), cfg);
        sim.connect(s1, dst, Bandwidth::gbps(1), Dur::from_micros(50), cfg);
        sim.inject(s1, Packet::new(s1, dst, FlowId(9), 1000, TagPayload(0)));
        sim.inject(s0, Packet::new(s0, dst, FlowId(4), 1000, TagPayload(0)));
        sim.run();
        // Identical links and sizes: both land at 8us ser + 50us prop.
        assert_eq!(sim.now(), SimTime::from_nanos(58_000));
        // Injection order (9 then 4), not node order, decides the tie.
        assert_eq!(sim.host::<RecordingAgent>(dst).seen, vec![9, 4]);
    }
}
