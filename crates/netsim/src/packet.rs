//! Packets and the payload abstraction.
//!
//! The simulator moves [`Packet`]s between nodes. The transport protocol
//! defines the payload type `P`; the simulator itself only needs the fields
//! on [`Packet`] (routing addresses, size, flow label) plus the small
//! [`Payload`] trait so switches can apply ECN marking without knowing the
//! payload's structure.

use core::fmt;

use crate::time::SimTime;

/// Identifies a node (host or switch) in the simulated network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index of this node, usable for array-indexed lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a unidirectional channel (queue + transmitter + wire).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub(crate) u32);

impl ChannelId {
    /// The raw index of this channel.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// A flow label carried by every packet.
///
/// Switches hash it for equal-cost multi-path selection and per-flow
/// accounting; the transport layer uses it as the connection id.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Behaviour the simulator needs from a transport payload.
///
/// The default implementations describe a payload that is not ECN-capable,
/// which is correct for plain TCP; DCTCP-style payloads override all three
/// methods.
pub trait Payload: Clone + fmt::Debug + 'static {
    /// Whether the packet is ECN-capable transport (ECT); only such packets
    /// are marked rather than dropped... marked *in addition to* normal
    /// drop-tail behaviour: marking never replaces a drop in this model.
    fn ecn_capable(&self) -> bool {
        false
    }

    /// Sets the Congestion Experienced codepoint.
    fn mark_ce(&mut self) {}

    /// Whether Congestion Experienced is set.
    fn is_ce(&self) -> bool {
        false
    }
}

/// A packet in flight.
#[derive(Clone, Debug)]
pub struct Packet<P> {
    /// Source host.
    pub src: NodeId,
    /// Destination host; switches forward on this field.
    pub dst: NodeId,
    /// Flow label for ECMP hashing and accounting.
    pub flow: FlowId,
    /// Total wire size in bytes (headers + data).
    pub size: u32,
    /// Time the packet was handed to the source's outgoing channel; set by
    /// the simulator when the packet is first sent.
    pub sent_at: SimTime,
    /// Engine-unique packet id, assigned by the simulator at injection
    /// (`0` until then). Invariant monitors use it to track individual
    /// packets — e.g. per-port FIFO order — across hops, which the
    /// `(src, dst, flow, size)` tuple cannot do unambiguously.
    pub uid: u64,
    /// Transport payload.
    pub payload: P,
}

impl<P: Payload> Packet<P> {
    /// Creates a packet. `sent_at` is stamped by the simulator on send.
    pub fn new(src: NodeId, dst: NodeId, flow: FlowId, size: u32, payload: P) -> Self {
        Packet {
            src,
            dst,
            flow,
            size,
            sent_at: SimTime::ZERO,
            uid: 0,
            payload,
        }
    }
}

/// A minimal payload for tests and examples: an opaque tag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TagPayload(pub u64);

impl Payload for TagPayload {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_payload_is_not_ecn_capable() {
        let mut p = TagPayload(7);
        assert!(!p.ecn_capable());
        assert!(!p.is_ce());
        p.mark_ce(); // no-op
        assert!(!p.is_ce());
    }

    #[test]
    fn ids_display() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(ChannelId(9).to_string(), "ch9");
        assert_eq!(FlowId(2).to_string(), "f2");
    }

    #[test]
    fn packet_new_zeroes_sent_at() {
        let p = Packet::new(NodeId(0), NodeId(1), FlowId(5), 1460, TagPayload(1));
        assert_eq!(p.sent_at, SimTime::ZERO);
        assert_eq!(p.size, 1460);
        assert_eq!(p.flow, FlowId(5));
    }
}
