//! Property tests pinning [`netsim::EventQueue`] to the `BinaryHeap`
//! reference model it replaced.
//!
//! The engine's byte-identical reproducibility rests on one contract:
//! events pop in `(time, insertion-sequence)` order, exactly as the old
//! `BinaryHeap<EvEntry>` implementation popped them. These tests drive
//! randomized push/pop and schedule/cancel/reschedule workloads through
//! both implementations and require identical observable behavior.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};

use proptest::prelude::*;

use netsim::time::SimTime;
use netsim::EventQueue;

/// The reference model: the exact structure `sim.rs` used before the
/// indexed 4-ary heap — a `BinaryHeap` of `Reverse<(time, seq, value)>`
/// with an external monotonically increasing sequence counter. `seq` is
/// unique, so `value` never participates in the ordering.
#[derive(Default)]
struct ReferenceQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    seq: u64,
}

impl ReferenceQueue {
    fn push(&mut self, at: SimTime, value: u64) {
        self.heap.push(Reverse((at, self.seq, value)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(SimTime, u64)> {
        self.heap.pop().map(|Reverse((at, _, v))| (at, v))
    }
}

proptest! {
    /// Interleaved pushes and pops agree with the reference model at
    /// every step, and both drain to the same tail.
    #[test]
    fn matches_binary_heap_reference(
        ops in proptest::collection::vec((any::<bool>(), 0u64..1_000), 1..400),
    ) {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut model = ReferenceQueue::default();
        let mut next_value = 0u64;
        for (is_push, t) in ops {
            if is_push {
                q.push(SimTime::from_nanos(t), next_value);
                model.push(SimTime::from_nanos(t), next_value);
                next_value += 1;
            } else {
                prop_assert_eq!(q.pop(), model.pop());
            }
            prop_assert_eq!(q.len(), model.heap.len());
            prop_assert_eq!(q.peek_at(), model.heap.peek().map(|Reverse((at, ..))| *at));
        }
        loop {
            let (got, want) = (q.pop(), model.pop());
            prop_assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
    }

    /// Ties on the timestamp break by insertion order, whatever the
    /// surrounding mix of earlier/later events looks like.
    #[test]
    fn same_timestamp_events_pop_in_insertion_order(
        t in 0u64..1_000,
        n in 1usize..200,
        noise in proptest::collection::vec(0u64..2_000, 0..50),
    ) {
        let mut q: EventQueue<u64> = EventQueue::new();
        for (i, &nt) in noise.iter().enumerate() {
            q.push(SimTime::from_nanos(nt), 1_000_000 + i as u64);
        }
        for v in 0..n as u64 {
            q.push(SimTime::from_nanos(t), v);
        }
        let mut tied: Vec<u64> = Vec::new();
        while let Some((at, v)) = q.pop() {
            if at == SimTime::from_nanos(t) && v < 1_000_000 {
                tied.push(v);
            }
        }
        prop_assert_eq!(tied, (0..n as u64).collect::<Vec<_>>());
    }

    /// Timer-style schedule/cancel/reschedule (lazy deletion through a
    /// cancelled set, exactly as `sim.rs` implements `cancel_timer`)
    /// yields the same delivered-timer stream on both implementations.
    #[test]
    fn schedule_cancel_reschedule_matches_reference(
        ops in proptest::collection::vec((0u8..3, 0u64..500), 1..300),
    ) {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut model = ReferenceQueue::default();
        let mut cancelled: BTreeSet<u64> = BTreeSet::new();
        let mut live: VecDeque<u64> = VecDeque::new();
        let mut next_id = 0u64;
        let mut schedule = |q: &mut EventQueue<u64>,
                            model: &mut ReferenceQueue,
                            live: &mut VecDeque<u64>,
                            t: u64| {
            let id = next_id;
            next_id += 1;
            q.push(SimTime::from_nanos(t), id);
            model.push(SimTime::from_nanos(t), id);
            live.push_back(id);
        };
        for (op, t) in ops {
            match op {
                0 => schedule(&mut q, &mut model, &mut live, t),
                1 => {
                    if let Some(id) = live.pop_front() {
                        cancelled.insert(id);
                    }
                }
                _ => {
                    // Reschedule = cancel + schedule under a fresh id,
                    // which is how the engine re-arms timers.
                    if let Some(id) = live.pop_front() {
                        cancelled.insert(id);
                    }
                    schedule(&mut q, &mut model, &mut live, t);
                }
            }
        }
        let drain = |pop: &mut dyn FnMut() -> Option<(SimTime, u64)>| {
            let mut fired = Vec::new();
            while let Some((at, id)) = pop() {
                if !cancelled.contains(&id) {
                    fired.push((at, id));
                }
            }
            fired
        };
        let fired_q = drain(&mut || q.pop());
        let fired_model = drain(&mut || model.pop());
        prop_assert_eq!(fired_q, fired_model);
        // Every live timer fired exactly once, in schedule-consistent order.
        prop_assert_eq!(q.len(), 0);
    }
}
