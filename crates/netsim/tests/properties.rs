//! Property-based tests for the simulator's core data structures.

use proptest::prelude::*;

use netsim::prelude::*;
use netsim::queue::{DropTailQueue, QueueConfig};
use netsim::time::SimTime;

fn pkt(src: NodeId, dst: NodeId, size: u32, tag: u64) -> Packet<TagPayload> {
    Packet::new(src, dst, FlowId(tag), size, TagPayload(tag))
}

/// Builds two host ids for fabricating packets.
fn two_nodes() -> (Simulator<TagPayload>, NodeId, NodeId) {
    let mut sim = Simulator::new();
    let a = sim.add_host(Box::new(SinkAgent::default()));
    let b = sim.add_host(Box::new(SinkAgent::default()));
    (sim, a, b)
}

proptest! {
    /// Queue conservation: every offered packet is exactly one of
    /// {queued now, dequeued, dropped}; FIFO order is preserved among
    /// the survivors.
    #[test]
    fn queue_conserves_and_orders_packets(
        cap in 1usize..50,
        ops in proptest::collection::vec((any::<bool>(), 40u32..2000), 1..200),
    ) {
        let (_sim, a, b) = two_nodes();
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(cap));
        let mut accepted = 0u64;
        let mut dequeued: Vec<u64> = Vec::new();
        let mut next_tag = 0u64;
        let mut t = 0u64;
        for (is_enqueue, size) in ops {
            t += 1;
            let now = SimTime::from_nanos(t);
            if is_enqueue {
                let p = pkt(a, b, size, next_tag);
                next_tag += 1;
                if q.enqueue(now, p) == netsim::queue::EnqueueOutcome::Accepted {
                    accepted += 1;
                }
            } else if let Some(p) = q.dequeue(now) {
                dequeued.push(p.payload.0);
            }
        }
        let stats = q.stats();
        prop_assert_eq!(stats.enqueued, accepted);
        prop_assert_eq!(stats.enqueued + stats.dropped, next_tag);
        prop_assert_eq!(stats.dequeued as usize, dequeued.len());
        prop_assert_eq!(accepted, stats.dequeued + q.len() as u64);
        prop_assert!(q.len() <= cap);
        // FIFO among accepted packets: dequeued tags strictly increase.
        prop_assert!(dequeued.windows(2).all(|w| w[0] < w[1]));
    }

    /// The occupancy integral is bounded by (max length x elapsed time)
    /// and average_len never exceeds max_len.
    #[test]
    fn occupancy_integral_bounded(
        sizes in proptest::collection::vec(40u32..2000, 1..100),
        gap_ns in 1u64..10_000,
    ) {
        let (_sim, a, b) = two_nodes();
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(1000));
        let mut t = 0;
        for (i, &s) in sizes.iter().enumerate() {
            t += gap_ns;
            q.enqueue(SimTime::from_nanos(t), pkt(a, b, s, i as u64));
        }
        let end = SimTime::from_nanos(t + gap_ns);
        q.settle(end);
        let stats = q.stats();
        let span = end.saturating_since(SimTime::ZERO);
        let avg = stats.average_len(span);
        prop_assert!(avg <= stats.max_len as f64 + 1e-9);
        prop_assert!(
            stats.occupancy_integral
                <= stats.max_len as u128 * span.as_nanos() as u128
        );
    }

    /// Serialization time scales linearly in bytes and inversely in rate.
    #[test]
    fn serialization_time_monotone(
        bw1 in 1_000_000u64..10_000_000_000,
        bytes in 1u32..100_000,
    ) {
        let b1 = Bandwidth::bps(bw1);
        let b2 = Bandwidth::bps(bw1 * 2);
        let t1 = b1.serialization_time(bytes);
        let t2 = b2.serialization_time(bytes);
        prop_assert!(t2 <= t1, "double rate never slower");
        let tb = b1.serialization_time(bytes.saturating_mul(2).max(bytes));
        prop_assert!(tb >= t1, "more bytes never faster");
        prop_assert!(t1.as_nanos() > 0, "positive wire time");
    }

    /// ThroughputMeter: the binned series accounts for every byte.
    #[test]
    fn meter_total_matches_series(
        records in proptest::collection::vec((0u64..10_000_000, 1u64..100_000), 1..100),
        bin_us in 1u64..10_000,
    ) {
        let mut m = ThroughputMeter::new(Dur::from_micros(bin_us));
        let mut total = 0u64;
        for &(at_ns, bytes) in &records {
            m.record(SimTime::from_nanos(at_ns), bytes);
            total += bytes;
        }
        prop_assert_eq!(m.total_bytes(), total);
        let bin_s = Dur::from_micros(bin_us).as_secs_f64();
        let from_series: f64 = m
            .mbps_series()
            .iter()
            .map(|(_, mbps)| mbps * bin_s * 1e6 / 8.0)
            .sum();
        prop_assert!((from_series - total as f64).abs() < 1.0);
    }

    /// RED drop probability is monotone in the average queue depth: for
    /// any valid threshold configuration and any count state, a deeper
    /// average never yields a smaller drop probability, and the result
    /// stays inside [0, 1].
    #[test]
    fn red_drop_probability_monotone_in_average(
        min_th in 0u32..100,
        band in 1u32..100,
        max_p_milli in 1u32..=1000,
        count in 0u64..50,
        avg_lo_milli in 0u64..200_000,
        delta_milli in 0u64..200_000,
    ) {
        let red = netsim::queue::RedConfig {
            min_th: min_th as f64,
            max_th: (min_th + band) as f64,
            max_p: max_p_milli as f64 / 1000.0,
            ..netsim::queue::RedConfig::default()
        };
        let lo = avg_lo_milli as f64 / 1000.0;
        let hi = lo + delta_milli as f64 / 1000.0;
        let p_lo = red.drop_probability(lo, count);
        let p_hi = red.drop_probability(hi, count);
        prop_assert!((0.0..=1.0).contains(&p_lo), "p({lo}) = {p_lo}");
        prop_assert!((0.0..=1.0).contains(&p_hi), "p({hi}) = {p_hi}");
        prop_assert!(
            p_hi >= p_lo,
            "deeper average must not drop less: p({lo}) = {p_lo}, p({hi}) = {p_hi}"
        );
        // The base probability is monotone as well (count = 0 case).
        prop_assert!(red.base_probability(hi) >= red.base_probability(lo));
    }

    /// End-to-end conservation: with random fan-in, every injected packet
    /// is either delivered to its destination or dropped at a queue.
    #[test]
    fn injected_packets_are_delivered_or_dropped(
        n_senders in 1usize..8,
        pkts_per_sender in 1u32..60,
        buffer in 1usize..64,
    ) {
        let mut sim: Simulator<TagPayload> = Simulator::new();
        let sw = sim.add_switch();
        let dst = sim.add_host(Box::new(SinkAgent::default()));
        let (_, bottleneck) = sim.connect(
            dst,
            sw,
            Bandwidth::gbps(1),
            Dur::from_micros(10),
            QueueConfig::drop_tail(buffer),
        );
        let mut senders = Vec::new();
        for _ in 0..n_senders {
            let h = sim.add_host(Box::new(SinkAgent::default()));
            sim.connect(
                h,
                sw,
                Bandwidth::gbps(1),
                Dur::from_micros(10),
                QueueConfig::drop_tail(10_000),
            );
            senders.push(h);
        }
        for (i, &s) in senders.iter().enumerate() {
            for k in 0..pkts_per_sender {
                sim.inject(s, pkt(s, dst, 1460, (i as u64) << 32 | k as u64));
            }
        }
        sim.run();
        let injected = n_senders as u64 * pkts_per_sender as u64;
        let received = sim.host::<SinkAgent>(dst).received;
        let dropped = sim.queue_stats(bottleneck).dropped;
        prop_assert_eq!(received + dropped, injected);
    }
}
