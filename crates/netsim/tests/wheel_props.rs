//! Differential property tests pinning [`netsim::TimerWheel`] to a
//! `BinaryHeap` reference scheduler (mirrors `eventq_props.rs`).
//!
//! The wheel replaces per-flow timer events in the engine's single
//! queue, so its one obligation is to fire timers in exactly the order
//! the queue would have: ascending `(deadline, sequence)`, with cancel
//! an in-place delete instead of a tombstone. These tests drive the
//! wheel and a `BinaryHeap<Reverse<(SimTime, u64, u64)>>` reference
//! with identical operation streams — schedule, cancel, reschedule, and
//! time advancement across cascade boundaries — and require identical
//! fire order at every step.
//!
//! Deadline generators deliberately straddle the wheel's geometry: slot
//! width 2^12 ns at level 0, fan-out 64 per level, six levels (horizon
//! 2^48 ns), overflow list beyond that. Regression seeds at the bottom
//! pin the cancel-racing-fire and recycled-slot ("ghost cancel") edges.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;

use netsim::time::SimTime;
use netsim::TimerWheel;

/// Reference model: the exact structure `sim.rs` used for timers before
/// the wheel — one global heap keyed `(deadline, seq)` with lazy
/// tombstone cancellation. `cancelled` marks entries by value; a popped
/// tombstone is skipped, exactly like the old engine's run loop.
#[derive(Default)]
struct ReferenceScheduler {
    heap: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    cancelled: std::collections::BTreeSet<u64>,
}

impl ReferenceScheduler {
    fn schedule(&mut self, at: SimTime, seq: u64, value: u64) {
        self.heap.push(Reverse((at, seq, value)));
    }

    fn cancel(&mut self, value: u64) {
        self.cancelled.insert(value);
    }

    /// Next live timer, skipping tombstones.
    fn pop(&mut self) -> Option<(SimTime, u64, u64)> {
        while let Some(Reverse((at, seq, v))) = self.heap.pop() {
            if self.cancelled.remove(&v) {
                continue;
            }
            return Some((at, seq, v));
        }
        None
    }
}

/// One operation of a randomized schedule/cancel/pop/advance stream.
#[derive(Clone, Debug)]
enum Op {
    /// Schedule a timer `delta` ns past the current wheel time.
    Schedule { delta: u64 },
    /// Cancel the k-th oldest live handle (no-op when none).
    Cancel { k: usize },
    /// Cancel a handle that already fired or was already cancelled.
    StaleCancel { k: usize },
    /// Pop one timer from both schedulers and compare.
    Pop,
    /// Advance wheel time to the next pending deadline minus `back` ns
    /// (how the engine advances: never past a pending timer).
    Advance { back: u64 },
}

/// Deltas spanning every level of the wheel plus the overflow list:
/// level 0 (< 2^18 ns), mid levels, top level (~2^48), and beyond.
fn delta_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        4 => 0u64..(1 << 18),
        3 => (1u64 << 18)..(1 << 30),
        2 => (1u64 << 30)..(1 << 42),
        1 => (1u64 << 42)..(1 << 49),
        1 => (1u64 << 49)..(1 << 55),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => delta_strategy().prop_map(|delta| Op::Schedule { delta }),
        2 => (0usize..8).prop_map(|k| Op::Cancel { k }),
        1 => (0usize..8).prop_map(|k| Op::StaleCancel { k }),
        3 => Just(Op::Pop),
        2 => (0u64..4096).prop_map(|back| Op::Advance { back }),
    ]
}

/// Drives both schedulers through `ops`, comparing every pop. Returns
/// the number of timers fired, so callers can assert coverage.
fn run_differential(ops: Vec<Op>) -> Result<(), TestCaseError> {
    let mut wheel: TimerWheel<u64> = TimerWheel::new();
    let mut model = ReferenceScheduler::default();
    let mut seq = 0u64;
    let mut next_value = 0u64;
    // (wheel handle, value) of possibly-live timers, oldest first.
    let mut live: Vec<(u64, u64)> = Vec::new();
    // Handles whose timers fired or were cancelled: must all be no-ops.
    let mut stale: Vec<u64> = Vec::new();
    for op in ops {
        match op {
            Op::Schedule { delta } => {
                seq += 1;
                let at = SimTime::from_nanos(wheel.now_nanos().saturating_add(delta));
                let h = wheel.schedule(at, seq, next_value);
                model.schedule(at, seq, next_value);
                live.push((h, next_value));
                next_value += 1;
            }
            Op::Cancel { k } => {
                if live.is_empty() {
                    continue;
                }
                let (h, v) = live.remove(k % live.len());
                let went = wheel.cancel(h);
                // The handle may have gone stale if its timer already
                // popped; mirror into the model only live cancels.
                if went.is_some() {
                    model.cancel(v);
                }
                stale.push(h);
            }
            Op::StaleCancel { k } => {
                if stale.is_empty() {
                    continue;
                }
                let h = stale[k % stale.len()];
                let before = wheel.len();
                prop_assert_eq!(wheel.cancel(h), None, "stale handle cancelled a live timer");
                prop_assert_eq!(wheel.len(), before);
            }
            Op::Pop => {
                let got = wheel.pop();
                let want = model.pop();
                prop_assert_eq!(got, want);
                if let Some((_, _, v)) = got {
                    live.retain(|&(_, lv)| lv != v);
                }
            }
            Op::Advance { back } => {
                // Advance like the engine: to just below the next
                // pending deadline (never past a live timer).
                if let Some((at, _)) = wheel.peek_key() {
                    let to = at.as_nanos().saturating_sub(back);
                    wheel.advance_to(SimTime::from_nanos(to));
                }
            }
        }
        prop_assert_eq!(wheel.len(), model.heap.len() - model.cancelled.len());
    }
    // Drain both to the same tail.
    loop {
        let (got, want) = (wheel.pop(), model.pop());
        prop_assert_eq!(got, want);
        if want.is_none() {
            break;
        }
    }
    prop_assert!(wheel.is_empty());
    Ok(())
}

proptest! {
    /// Randomized schedule/cancel/stale-cancel/pop/advance streams agree
    /// with the tombstone-heap reference at every pop, across all wheel
    /// levels and the overflow list.
    #[test]
    fn matches_binary_heap_reference(
        ops in proptest::collection::vec(op_strategy(), 1..400),
    ) {
        run_differential(ops)?;
    }

    /// Same-deadline timers fire in insertion-sequence order (FIFO),
    /// regardless of which levels they were first placed at and how many
    /// cascades they survived before firing.
    #[test]
    fn same_deadline_fifo_is_stable(
        deadline_delta in 1u64..(1 << 44),
        n in 2usize..40,
        pre_advance in proptest::collection::vec(any::<bool>(), 0..8),
    ) {
        let mut wheel: TimerWheel<u64> = TimerWheel::new();
        let at = SimTime::from_nanos(deadline_delta);
        // Interleave schedules with partial advances toward the deadline
        // so successive timers land at different levels for the same
        // deadline tick as the cursor closes in.
        let mut seq = 0u64;
        let mut scheduled = 0u64;
        let mut steps = pre_advance.iter();
        for v in 0..n as u64 {
            seq += 1;
            wheel.schedule(at, seq, v);
            scheduled += 1;
            if steps.next().copied().unwrap_or(false) {
                let cur = wheel.now_nanos();
                let to = cur + (deadline_delta.saturating_sub(cur)) / 2;
                wheel.advance_to(SimTime::from_nanos(to));
            }
        }
        let mut fired = Vec::new();
        while let Some((t, _, v)) = wheel.pop() {
            prop_assert_eq!(t, at);
            fired.push(v);
        }
        prop_assert_eq!(fired.len() as u64, scheduled);
        prop_assert_eq!(fired, (0..n as u64).collect::<Vec<_>>());
    }

    /// Deadlines exactly on cascade boundaries (multiples of slot/level
    /// widths, the off-by-one-prone keys) fire in order and exactly once.
    #[test]
    fn cascade_boundary_deadlines_fire_exactly_once(
        shifts in proptest::collection::vec((12u32..49, -1i64..=1), 1..30),
    ) {
        let mut wheel: TimerWheel<u64> = TimerWheel::new();
        let mut keys: Vec<(SimTime, u64)> = Vec::new();
        let mut seq = 0u64;
        for (i, &(s, off)) in shifts.iter().enumerate() {
            let at = ((1u64 << s) as i64 + off).max(1) as u64;
            seq += 1;
            wheel.schedule(SimTime::from_nanos(at), seq, i as u64);
            keys.push((SimTime::from_nanos(at), seq));
        }
        keys.sort();
        let mut fired = Vec::new();
        while let Some((at, s, _)) = wheel.pop() {
            fired.push((at, s));
        }
        prop_assert_eq!(fired, keys);
    }
}

/// Regression: a cancel racing a same-tick fire. Two timers share a
/// deadline; the first fires and cancels the second before the engine
/// reaches it. The second must not fire, and the cancel must report it
/// was live — deterministically, whatever level the tick lives at.
#[test]
fn cancel_racing_same_tick_fire_is_deterministic() {
    for shift in [0u32, 13, 20, 27, 40] {
        let mut wheel: TimerWheel<u64> = TimerWheel::new();
        let at = SimTime::from_nanos(100u64 << shift);
        wheel.schedule(at, 1, 1);
        let victim = wheel.schedule(at, 2, 2);
        let (fat, fseq, fv) = wheel.pop().expect("first timer fires");
        assert_eq!((fat, fseq, fv), (at, 1, 1));
        assert_eq!(
            wheel.cancel(victim),
            Some(at),
            "same-tick victim was still live at shift {shift}"
        );
        assert_eq!(wheel.pop(), None, "victim must not fire (shift {shift})");
    }
}

/// Regression: the ghost-cancel / double-fire edge. A handle whose timer
/// already fired must stay inert even after the wheel recycles the slab
/// slot for a new timer — and no sequence of fire/cancel can make one
/// timer fire twice.
#[test]
fn fired_handle_stays_inert_after_slot_reuse() {
    let mut wheel: TimerWheel<u64> = TimerWheel::new();
    let ghost = wheel.schedule(SimTime::from_nanos(10), 1, 1);
    assert_eq!(wheel.pop(), Some((SimTime::from_nanos(10), 1, 1)));
    // The new timer recycles the fired timer's slab slot.
    let live = wheel.schedule(SimTime::from_nanos(20), 2, 2);
    assert_eq!(
        wheel.cancel(ghost),
        None,
        "ghost cancel must not kill the recycled slot"
    );
    assert_eq!(wheel.len(), 1);
    // And the fired timer cannot fire again.
    assert_eq!(wheel.pop(), Some((SimTime::from_nanos(20), 2, 2)));
    assert_eq!(wheel.pop(), None);
    assert_eq!(wheel.cancel(live), None, "handle of a fired timer is stale");
}

/// Max-horizon deadlines: keys at and beyond the top level's window go
/// through the overflow list and still merge into the global order.
#[test]
fn max_horizon_deadlines_merge_with_near_timers() {
    let mut wheel: TimerWheel<u64> = TimerWheel::new();
    let top = 1u64 << 48;
    wheel.schedule(SimTime::from_nanos(top - 1), 1, 1); // top level
    wheel.schedule(SimTime::from_nanos(top + 1), 2, 2); // overflow
    wheel.schedule(SimTime::from_nanos(5), 3, 3); // level 0
    wheel.schedule(SimTime::from_nanos(top + 1), 4, 4); // overflow, same deadline
    let fired: Vec<u64> = std::iter::from_fn(|| wheel.pop().map(|(_, _, v)| v)).collect();
    assert_eq!(fired, vec![3, 1, 2, 4]);
}
