//! `Lint.toml` — the analyzer's configuration.
//!
//! A deliberately small TOML subset, parsed by hand (the workspace
//! builds offline; no `toml` crate): top-level `exclude`, then one
//! `[rule-name]` section per rule with `enabled`, `apply-paths` and
//! `allow-paths` keys. Arrays of strings may span lines. Anything the
//! parser does not understand is a hard error — a silently ignored
//! config key is how a lint rots.
//!
//! Path semantics: every entry is a workspace-relative prefix. A rule
//! with `apply-paths` runs only on files under one of those prefixes; a
//! rule's `allow-paths` carves out files the rule never judges (the
//! documented alternative to inline suppressions for whole components,
//! e.g. the wall-clock allowlist for the harness).

use std::collections::BTreeMap;

use crate::diag::Severity;

/// Per-rule configuration.
#[derive(Clone, Debug, Default)]
pub struct RuleConfig {
    /// `false` disables the rule outright.
    pub disabled: bool,
    /// When set, the rule only runs on files under these prefixes.
    pub apply_paths: Option<Vec<String>>,
    /// Files under these prefixes are exempt.
    pub allow_paths: Vec<String>,
    /// `deny` (default) fails the run; `warn` reports but exits 0.
    pub severity: Severity,
    /// Semantic rules only: files under these prefixes do not *seed*
    /// taint (their wall-clock / unordered-map uses are trusted), but
    /// functions in them still propagate taint from elsewhere. This is
    /// how `netsim::hash` vouches for its deterministically-seeded
    /// `HashMap` without exempting its callers.
    pub source_allow_paths: Vec<String>,
}

/// The whole configuration.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Workspace-relative prefixes never scanned at all.
    pub exclude: Vec<String>,
    /// Rule sections by rule name.
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Config {
    /// Parses `Lint.toml` text.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section: Option<String> = None;
        let mut lines = text.lines().enumerate().peekable();
        while let Some((n, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = Some(name.trim().to_string());
                cfg.rules.entry(name.trim().to_string()).or_default();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("Lint.toml:{}: expected `key = value`", n + 1));
            };
            let key = key.trim();
            let mut value = value.trim().to_string();
            // Multi-line arrays: keep consuming lines until brackets
            // close (strings in our config never contain brackets).
            while value.starts_with('[') && !brackets_balanced(&value) {
                let Some((_, next)) = lines.next() else {
                    return Err(format!("Lint.toml:{}: unterminated array", n + 1));
                };
                value.push(' ');
                value.push_str(strip_comment(next).trim());
            }
            match (&section, key) {
                (None, "exclude") => cfg.exclude = parse_string_array(&value, n)?,
                (None, k) => {
                    return Err(format!("Lint.toml:{}: unknown top-level key `{k}`", n + 1))
                }
                (Some(rule), k) => {
                    let rc = cfg.rules.entry(rule.clone()).or_default();
                    match k {
                        "enabled" => rc.disabled = value.trim() == "false",
                        "apply-paths" => rc.apply_paths = Some(parse_string_array(&value, n)?),
                        "allow-paths" => rc.allow_paths = parse_string_array(&value, n)?,
                        "source-allow-paths" => {
                            rc.source_allow_paths = parse_string_array(&value, n)?
                        }
                        "severity" => {
                            rc.severity = match value.trim() {
                                "\"deny\"" => Severity::Deny,
                                "\"warn\"" => Severity::Warn,
                                v => {
                                    return Err(format!(
                                    "Lint.toml:{}: severity must be \"deny\" or \"warn\", got {v}",
                                    n + 1
                                ))
                                }
                            }
                        }
                        k => {
                            return Err(format!(
                                "Lint.toml:{}: unknown key `{k}` in [{rule}]",
                                n + 1
                            ))
                        }
                    }
                }
            }
        }
        Ok(cfg)
    }

    /// The configuration for one rule (defaults when absent).
    pub fn rule(&self, name: &str) -> RuleConfig {
        self.rules.get(name).cloned().unwrap_or_default()
    }

    /// The effective severity of one rule (`Deny` unless configured).
    pub fn severity(&self, name: &str) -> Severity {
        self.rule(name).severity
    }

    /// Semantic rules: whether a file's own tokens may seed taint for
    /// `rule` (see [`RuleConfig::source_allow_paths`]).
    pub fn seeds_taint(&self, rule: &str, rel_path: &str) -> bool {
        !self
            .rule(rule)
            .source_allow_paths
            .iter()
            .any(|p| path_under(rel_path, p))
    }

    /// Whether `rel_path` is excluded from scanning entirely.
    pub fn is_excluded(&self, rel_path: &str) -> bool {
        self.exclude.iter().any(|p| path_under(rel_path, p))
    }

    /// Whether a rule judges a given file, per its section.
    pub fn rule_applies(&self, rule: &str, rel_path: &str) -> bool {
        let rc = self.rule(rule);
        if rc.disabled {
            return false;
        }
        if let Some(apply) = &rc.apply_paths {
            if !apply.iter().any(|p| path_under(rel_path, p)) {
                return false;
            }
        }
        !rc.allow_paths.iter().any(|p| path_under(rel_path, p))
    }
}

/// Prefix match on path components: `crates/tcp` covers
/// `crates/tcp/src/conn.rs` but not `crates/tcp2/...`.
fn path_under(path: &str, prefix: &str) -> bool {
    let prefix = prefix.trim_end_matches('/');
    path == prefix || path.starts_with(&format!("{prefix}/"))
}

fn strip_comment(line: &str) -> &str {
    // `#` starts a comment unless inside a quoted string.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn brackets_balanced(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_string_array(value: &str, line_no: usize) -> Result<Vec<String>, String> {
    let inner = value
        .trim()
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("Lint.toml:{}: expected a [\"...\"] array", line_no + 1))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        let s = item
            .strip_prefix('"')
            .and_then(|i| i.strip_suffix('"'))
            .ok_or_else(|| format!("Lint.toml:{}: array items must be quoted", line_no + 1))?;
        out.push(s.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# workspace config
exclude = ["target", "crates/lint/tests/fixtures"]

[no-wall-clock]
allow-paths = [
  "crates/harness",   # campaign timing
  "crates/perf",
]

[no-raw-unit-literal]
apply-paths = ["crates/netsim"]
allow-paths = ["crates/netsim/src/units.rs"]

[no-float-eq]
enabled = false
"#;

    #[test]
    fn parses_sections_and_arrays() {
        let c = Config::parse(SAMPLE).unwrap();
        assert!(c.is_excluded("target/debug/foo.rs"));
        assert!(c.is_excluded("crates/lint/tests/fixtures/bad.rs"));
        assert!(!c.is_excluded("crates/lint/tests/fixtures_test.rs"));
        assert!(!c.rule_applies("no-wall-clock", "crates/harness/src/engine.rs"));
        assert!(c.rule_applies("no-wall-clock", "crates/bench/src/lib.rs"));
        assert!(c.rule_applies("no-raw-unit-literal", "crates/netsim/src/time.rs"));
        assert!(!c.rule_applies("no-raw-unit-literal", "crates/netsim/src/units.rs"));
        assert!(!c.rule_applies("no-raw-unit-literal", "crates/tcp/src/conn.rs"));
        assert!(!c.rule_applies("no-float-eq", "crates/core/src/kmodel.rs"));
        assert!(c.rule_applies("no-panic-in-library", "anything.rs"));
    }

    #[test]
    fn prefix_matching_respects_components() {
        assert!(path_under("crates/tcp/src/a.rs", "crates/tcp"));
        assert!(!path_under("crates/tcp2/src/a.rs", "crates/tcp"));
        assert!(path_under("crates/tcp", "crates/tcp"));
    }

    #[test]
    fn unknown_keys_are_hard_errors() {
        assert!(Config::parse("mystery = 3\n").is_err());
        assert!(Config::parse("[no-wall-clock]\ncolor = \"red\"\n").is_err());
    }

    #[test]
    fn severity_and_source_allow_paths() {
        let c = Config::parse(
            "[transitive-wall-clock]\nseverity = \"warn\"\n\
             [transitive-unordered-iteration]\n\
             source-allow-paths = [\"crates/netsim/src/hash.rs\"]\n",
        )
        .unwrap();
        assert_eq!(c.severity("transitive-wall-clock"), Severity::Warn);
        assert_eq!(c.severity("transitive-unordered-iteration"), Severity::Deny);
        assert!(!c.seeds_taint(
            "transitive-unordered-iteration",
            "crates/netsim/src/hash.rs"
        ));
        assert!(c.seeds_taint("transitive-unordered-iteration", "crates/tcp/src/conn.rs"));
        assert!(Config::parse("[transitive-wall-clock]\nseverity = \"loud\"\n").is_err());
    }

    #[test]
    fn multi_line_arrays() {
        let c = Config::parse("exclude = [\n \"a\",\n \"b\",\n]\n").unwrap();
        assert_eq!(c.exclude, ["a", "b"]);
    }
}
