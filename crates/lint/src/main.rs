//! The `trim-lint` CLI.
//!
//! ```text
//! trim-lint                  # source rules over the workspace
//! trim-lint --artifacts      # registry/EXPERIMENTS.md/results/corpus cross-check
//! trim-lint --format json    # machine-readable report (schema v1)
//! trim-lint --list-rules     # the rule catalog with stable codes
//! ```
//!
//! Exit codes: `0` clean, `1` diagnostics found, `2` usage or I/O error
//! — suitable for CI gating.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use trim_lint::{diag, rules};

struct Args {
    root: Option<PathBuf>,
    format: Format,
    artifacts: bool,
    list_rules: bool,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn usage() -> &'static str {
    "usage: trim-lint [--root DIR] [--format text|json] [--artifacts] [--list-rules]\n\
     \n\
     Determinism & simulation-hygiene static analysis for the TCP-TRIM workspace.\n\
     Without flags, runs the source rules (TL001-TL008) over every .rs file under\n\
     the workspace root (the nearest ancestor directory holding Lint.toml).\n\
     --artifacts instead cross-checks the experiment registry against\n\
     EXPERIMENTS.md, committed results/ CSVs, and corpus/*.spec round-trips\n\
     (TL101-TL104).\n\
     \n\
     Exit codes: 0 clean, 1 diagnostics found, 2 usage/IO error."
}

/// Writes to stdout, treating a closed pipe (`trim-lint ... | head`) as a
/// clean exit rather than a panic.
fn emit(text: &str) {
    use std::io::Write;
    if write!(std::io::stdout(), "{text}").is_err() {
        std::process::exit(0);
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format: Format::Text,
        artifacts: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a directory argument")?;
                args.root = Some(PathBuf::from(v));
            }
            "--format" => {
                let v = it.next().ok_or("--format needs text|json")?;
                args.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (text|json)")),
                };
            }
            "--artifacts" => args.artifacts = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                emit(usage());
                emit("\n");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("trim-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for r in rules::SOURCE_RULES.iter().chain(rules::ARTIFACT_RULES) {
            emit(&format!("{}  {:<24}  {}\n", r.code, r.name, r.summary));
        }
        return ExitCode::SUCCESS;
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = match args.root.clone().or_else(|| trim_lint::find_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!(
                "trim-lint: no Lint.toml found above {} (pass --root)",
                cwd.display()
            );
            return ExitCode::from(2);
        }
    };

    let report = if args.artifacts {
        trim_lint::run_artifacts(&root)
    } else {
        trim_lint::load_config(&root).and_then(|cfg| trim_lint::run_workspace(&root, &cfg))
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trim-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let rendered = match args.format {
        Format::Json => diag::render_json(&report.diagnostics, report.files_scanned),
        Format::Text => diag::render_text(&report.diagnostics, report.files_scanned),
    };
    emit(&rendered);
    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
