//! The `trim-lint` CLI.
//!
//! ```text
//! trim-lint                  # source rules over the workspace
//! trim-lint --semantic       # interprocedural taint + shard-safety (TL2xx)
//! trim-lint --artifacts      # registry/EXPERIMENTS.md/results/corpus cross-check
//! trim-lint --callgraph F    # also dump the call-graph JSON to F (with --semantic)
//! trim-lint --format json    # machine-readable report (schema v2)
//! trim-lint --list-rules     # the rule catalog with stable codes
//! ```
//!
//! Exit codes: `0` clean (or warn-severity findings only), `1` deny
//! diagnostics found, `2` usage or I/O error — suitable for CI gating.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use trim_lint::{diag, rules};

struct Args {
    root: Option<PathBuf>,
    format: Format,
    artifacts: bool,
    semantic: bool,
    callgraph: Option<PathBuf>,
    list_rules: bool,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn usage() -> &'static str {
    "usage: trim-lint [--root DIR] [--format text|json] [--semantic] [--artifacts]\n\
     \x20                [--callgraph FILE] [--list-rules]\n\
     \n\
     Determinism & simulation-hygiene static analysis for the TCP-TRIM workspace.\n\
     Without flags, runs the source rules (TL001-TL008) over every .rs file under\n\
     the workspace root (the nearest ancestor directory holding Lint.toml).\n\
     --semantic instead runs the interprocedural passes (TL201-TL205): item\n\
     parsing, workspace symbol table, conservative call graph, and taint\n\
     propagation from nondeterminism sources to simulation entry points.\n\
     --callgraph FILE additionally writes the resolved call graph (with per-fn\n\
     taint labels) as versioned JSON; requires --semantic.\n\
     --artifacts instead cross-checks the experiment registry against\n\
     EXPERIMENTS.md, committed results/ CSVs, and corpus/*.spec round-trips\n\
     (TL101-TL104).\n\
     \n\
     Exit codes: 0 clean (or warn-only findings), 1 deny diagnostics found,\n\
     2 usage/IO error."
}

/// Writes to stdout, treating a closed pipe (`trim-lint ... | head`) as a
/// clean exit rather than a panic.
fn emit(text: &str) {
    use std::io::Write;
    if write!(std::io::stdout(), "{text}").is_err() {
        std::process::exit(0);
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format: Format::Text,
        artifacts: false,
        semantic: false,
        callgraph: None,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a directory argument")?;
                args.root = Some(PathBuf::from(v));
            }
            "--format" => {
                let v = it.next().ok_or("--format needs text|json")?;
                args.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (text|json)")),
                };
            }
            "--artifacts" => args.artifacts = true,
            "--semantic" => args.semantic = true,
            "--callgraph" => {
                let v = it.next().ok_or("--callgraph needs a file argument")?;
                args.callgraph = Some(PathBuf::from(v));
            }
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                emit(usage());
                emit("\n");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("trim-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for r in rules::SOURCE_RULES
            .iter()
            .chain(rules::SEMANTIC_RULES)
            .chain(rules::ARTIFACT_RULES)
        {
            emit(&format!("{}  {:<32}  {}\n", r.code, r.name, r.summary));
        }
        return ExitCode::SUCCESS;
    }
    if args.callgraph.is_some() && !args.semantic {
        eprintln!("trim-lint: --callgraph requires --semantic");
        return ExitCode::from(2);
    }
    if args.semantic && args.artifacts {
        eprintln!("trim-lint: --semantic and --artifacts are separate modes; pick one");
        return ExitCode::from(2);
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = match args.root.clone().or_else(|| trim_lint::find_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!(
                "trim-lint: no Lint.toml found above {} (pass --root)",
                cwd.display()
            );
            return ExitCode::from(2);
        }
    };

    let report = if args.artifacts {
        trim_lint::run_artifacts(&root)
    } else if args.semantic {
        trim_lint::load_config(&root).and_then(|cfg| {
            let (report, analysis) = trim_lint::run_semantic(&root, &cfg)?;
            if let Some(path) = &args.callgraph {
                std::fs::write(path, analysis.render_callgraph())
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            }
            Ok(report)
        })
    } else {
        trim_lint::load_config(&root).and_then(|cfg| trim_lint::run_workspace(&root, &cfg))
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trim-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let rendered = match args.format {
        Format::Json => diag::render_json(&report.diagnostics, report.files_scanned),
        Format::Text => diag::render_text(&report.diagnostics, report.files_scanned),
    };
    emit(&rendered);
    // Warn-severity findings are reported but do not fail the run.
    let denies = report
        .diagnostics
        .iter()
        .any(|d| d.severity == diag::Severity::Deny);
    if denies {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
