//! `trim-lint --artifacts`: the experiment-registry cross-checker.
//!
//! The repo's reproducibility story has four legs that can silently
//! drift apart: the experiment registry (`crates/bench/src/registry.rs`),
//! the narrative (`EXPERIMENTS.md`), the committed goldens (`results/`),
//! and the fuzz corpus (`corpus/*.spec`). This mode verifies, without
//! running a single simulation, that they still agree:
//!
//! - **TL101** — every registered experiment id appears in an
//!   `EXPERIMENTS.md` heading (as `exp_<id>` or the bare id).
//! - **TL102** — every artifact an experiment declares exists as
//!   `results/<name>.csv`, and conversely every committed top-level
//!   results CSV is declared by some experiment (no orphans).
//! - **TL103** — every declared artifact name appears as a string
//!   literal in the experiment's module, so the registry cannot claim
//!   CSVs the code no longer produces.
//! - **TL104** — every `corpus/*.spec` parses with
//!   `trim_workload::spec`, validates, and round-trips exactly through
//!   `to_text`/`from_text`.
//!
//! The registry is read *statically* with the same lexer the source
//! rules use: `id: "…"`, `campaign: experiments::<module>::…` and
//! `artifacts: &[…]` fields of each `ExperimentSpec` entry.

use std::fs;
use std::path::Path;

use trim_workload::spec::ScenarioSpec;

use crate::diag::Diagnostic;
use crate::lexer::{lex, TokenKind};

/// One experiment as declared in the registry source.
#[derive(Clone, Debug, Default)]
pub struct RegistryEntry {
    /// Stable id (`--only` key).
    pub id: String,
    /// Module under `experiments::` that builds the campaign.
    pub module: String,
    /// Declared top-level `results/*.csv` artifact stems.
    pub artifacts: Vec<String>,
    /// Line of the `id:` field, for diagnostics.
    pub line: u32,
}

const REGISTRY: &str = "crates/bench/src/registry.rs";
const EXPERIMENTS_MD: &str = "EXPERIMENTS.md";

fn art_diag(
    code: &'static str,
    rule: &'static str,
    path: &str,
    line: u32,
    msg: String,
) -> Diagnostic {
    Diagnostic {
        code,
        rule,
        path: path.to_string(),
        line,
        message: msg,
        severity: crate::diag::Severity::Deny,
    }
}

/// Statically parses the registry source into its entries.
pub fn parse_registry(src: &str) -> Result<Vec<RegistryEntry>, String> {
    let tokens = lex(src);
    let sig: Vec<_> = tokens.iter().filter(|t| !t.is_trivia()).collect();
    let text = |k: usize| -> &str { &src[sig[k].start..sig[k].end] };
    let mut entries: Vec<RegistryEntry> = Vec::new();
    let mut cur: Option<RegistryEntry> = None;
    let mut k = 0usize;
    while k < sig.len() {
        match text(k) {
            // The struct declaration also contains `id:` — only a string
            // literal value starts an entry.
            "id" if k + 2 < sig.len()
                && text(k + 1) == ":"
                && sig[k + 2].kind == TokenKind::Str =>
            {
                if let Some(e) = cur.take() {
                    entries.push(e);
                }
                cur = Some(RegistryEntry {
                    id: unquote(text(k + 2)),
                    line: sig[k].line,
                    ..RegistryEntry::default()
                });
                k += 3;
            }
            "campaign" if k + 4 < sig.len() && text(k + 1) == ":" => {
                if let Some(e) = cur.as_mut() {
                    if text(k + 2) == "experiments" && text(k + 3) == "::" {
                        e.module = text(k + 4).to_string();
                    }
                }
                k += 5;
            }
            "artifacts" if k + 3 < sig.len() && text(k + 1) == ":" => {
                // artifacts: &["a", "b", …]
                let mut j = k + 2;
                while j < sig.len() && text(j) != "[" {
                    j += 1;
                }
                j += 1;
                while j < sig.len() && text(j) != "]" {
                    if sig[j].kind == TokenKind::Str {
                        if let Some(e) = cur.as_mut() {
                            e.artifacts.push(unquote(text(j)));
                        }
                    }
                    j += 1;
                }
                k = j + 1;
            }
            _ => k += 1,
        }
    }
    if let Some(e) = cur.take() {
        entries.push(e);
    }
    if entries.is_empty() {
        return Err(format!("{REGISTRY}: no ExperimentSpec entries found"));
    }
    Ok(entries)
}

fn unquote(s: &str) -> String {
    s.trim_matches('"').to_string()
}

/// Whether the module's source can plausibly produce the artifact name
/// `a`: either it contains `"a"` verbatim, or it contains a format
/// string (a literal with `{…}` holes) whose fixed fragments match `a`
/// in order — e.g. `"fig4_6_{name}_detail"` produces
/// `fig4_6_reno_detail`. Fragments must anchor at both ends when the
/// literal does, and at least 4 fixed bytes are required so generic
/// format strings like `"{t:.1}"` never match.
fn module_produces(module_src: &str, a: &str) -> bool {
    for tok in lex(module_src) {
        if tok.kind != TokenKind::Str {
            continue;
        }
        let lit = unquote(&module_src[tok.start..tok.end]);
        if lit == a {
            return true;
        }
        if lit.contains('{') && format_matches(&lit, a) {
            return true;
        }
    }
    false
}

/// Matches a `format!`-style template's fixed fragments against `name`.
fn format_matches(template: &str, name: &str) -> bool {
    let mut frags: Vec<&str> = Vec::new();
    let mut rest = template;
    loop {
        match rest.find('{') {
            Some(open) => {
                frags.push(&rest[..open]);
                match rest[open..].find('}') {
                    Some(close) => rest = &rest[open + close + 1..],
                    None => return false, // malformed template
                }
            }
            None => {
                frags.push(rest);
                break;
            }
        }
    }
    let fixed: usize = frags.iter().map(|f| f.len()).sum();
    if fixed < 4 || frags.is_empty() {
        return false;
    }
    let mut pos = 0usize;
    for (i, frag) in frags.iter().enumerate() {
        if frag.is_empty() {
            continue;
        }
        let found = match name[pos..].find(frag) {
            Some(off) => pos + off,
            None => return false,
        };
        if i == 0 && found != 0 {
            return false; // template starts with a fixed prefix
        }
        pos = found + frag.len();
    }
    // A fixed tail in the template must also terminate the name.
    match frags.last() {
        Some(tail) if !tail.is_empty() => name.ends_with(tail) && pos == name.len(),
        _ => true,
    }
}

/// Runs every artifact cross-check against the workspace at `root`.
pub fn check_artifacts(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let mut out = Vec::new();
    let reg_src = fs::read_to_string(root.join(REGISTRY))
        .map_err(|e| format!("cannot read {REGISTRY}: {e}"))?;
    let entries = parse_registry(&reg_src)?;
    let experiments_md = fs::read_to_string(root.join(EXPERIMENTS_MD))
        .map_err(|e| format!("cannot read {EXPERIMENTS_MD}: {e}"))?;
    let headings: Vec<&str> = experiments_md
        .lines()
        .filter(|l| l.starts_with('#'))
        .collect();

    let mut declared: Vec<String> = Vec::new();
    for e in &entries {
        // TL101: a section heading must name the experiment.
        let exp_tag = format!("exp_{}", e.id);
        if !headings
            .iter()
            .any(|h| h.contains(&exp_tag) || h.contains(&format!("`{}`", e.id)))
        {
            out.push(art_diag(
                "TL101",
                "artifact-experiment-doc",
                REGISTRY,
                e.line,
                format!(
                    "experiment `{}` has no EXPERIMENTS.md section: add a heading \
                     mentioning `{exp_tag}` (or `{}`) describing paper vs. measured",
                    e.id, e.id
                ),
            ));
        }
        // TL102 (forward): every declared artifact must be committed.
        let module_path = format!("crates/bench/src/experiments/{}.rs", e.module);
        let module_src = fs::read_to_string(root.join(&module_path)).unwrap_or_default();
        for a in &e.artifacts {
            declared.push(a.clone());
            let csv = format!("results/{a}.csv");
            if !root.join(&csv).is_file() {
                out.push(art_diag(
                    "TL102",
                    "artifact-results-csv",
                    REGISTRY,
                    e.line,
                    format!(
                        "experiment `{}` declares artifact `{a}` but `{csv}` is not \
                         committed; run the campaign and commit the golden",
                        e.id
                    ),
                ));
            }
            // TL103: the module must actually produce that artifact name,
            // either as a verbatim literal or through a format string.
            if !module_produces(&module_src, a) {
                out.push(art_diag(
                    "TL103",
                    "artifact-stale-declaration",
                    REGISTRY,
                    e.line,
                    format!(
                        "experiment `{}` declares artifact `{a}` but `{module_path}` \
                         never names it; the registry declaration is stale",
                        e.id
                    ),
                ));
            }
        }
        if e.artifacts.is_empty() {
            out.push(art_diag(
                "TL103",
                "artifact-stale-declaration",
                REGISTRY,
                e.line,
                format!(
                    "experiment `{}` declares no artifacts; every campaign reduces to \
                     at least one committed CSV",
                    e.id
                ),
            ));
        }
    }

    // TL102 (reverse): no orphaned top-level results CSVs.
    let results_dir = root.join("results");
    if results_dir.is_dir() {
        let mut names: Vec<String> = Vec::new();
        let rd = fs::read_dir(&results_dir).map_err(|e| format!("cannot read results/: {e}"))?;
        for entry in rd.flatten() {
            let p = entry.path();
            if p.extension().and_then(|e| e.to_str()) == Some("csv") {
                if let Some(stem) = p.file_stem().and_then(|s| s.to_str()) {
                    names.push(stem.to_string());
                }
            }
        }
        names.sort();
        for stem in names {
            if !declared.iter().any(|d| d == &stem) {
                out.push(art_diag(
                    "TL102",
                    "artifact-results-csv",
                    &format!("results/{stem}.csv"),
                    0,
                    format!(
                        "committed results CSV `{stem}` is declared by no experiment in \
                         {REGISTRY}; add it to an `artifacts:` list or delete the file"
                    ),
                ));
            }
        }
    }

    // TL104: corpus specs parse, validate and round-trip.
    let corpus = root.join("corpus");
    if corpus.is_dir() {
        let mut specs: Vec<_> = fs::read_dir(&corpus)
            .map_err(|e| format!("cannot read corpus/: {e}"))?
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("spec"))
            .collect();
        specs.sort();
        for path in specs {
            let rel = format!(
                "corpus/{}",
                path.file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or("<non-utf8>")
            );
            let text = match fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    out.push(art_diag(
                        "TL104",
                        "artifact-corpus-spec",
                        &rel,
                        0,
                        format!("unreadable: {e}"),
                    ));
                    continue;
                }
            };
            match ScenarioSpec::from_text(&text) {
                Err(e) => out.push(art_diag(
                    "TL104",
                    "artifact-corpus-spec",
                    &rel,
                    0,
                    format!("does not parse as a ScenarioSpec: {e}"),
                )),
                Ok(spec) => {
                    if let Err(e) = spec.validate() {
                        out.push(art_diag(
                            "TL104",
                            "artifact-corpus-spec",
                            &rel,
                            0,
                            format!("fails validation: {e}"),
                        ));
                    } else {
                        match ScenarioSpec::from_text(&spec.to_text()) {
                            Ok(again) if again == spec => {}
                            Ok(_) => out.push(art_diag(
                                "TL104",
                                "artifact-corpus-spec",
                                &rel,
                                0,
                                "to_text/from_text round-trip is not the identity".to_string(),
                            )),
                            Err(e) => out.push(art_diag(
                                "TL104",
                                "artifact-corpus-spec",
                                &rel,
                                0,
                                format!("re-parse of to_text output failed: {e}"),
                            )),
                        }
                    }
                }
            }
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
pub static ALL: &[ExperimentSpec] = &[
    ExperimentSpec {
        id: "trace",
        title: "fig1-2 trace characterization",
        campaign: experiments::trace::campaign,
        artifacts: &["fig1_trains", "fig2a_size_cdf"],
    },
    ExperimentSpec {
        id: "large_scale_100k",
        title: "ext",
        campaign: experiments::large_scale::campaign_100k,
        artifacts: &["ext_scale_incast"],
    },
];
"#;

    #[test]
    fn registry_parse_extracts_entries() {
        let entries = parse_registry(SAMPLE).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].id, "trace");
        assert_eq!(entries[0].module, "trace");
        assert_eq!(entries[0].artifacts, ["fig1_trains", "fig2a_size_cdf"]);
        assert_eq!(entries[1].id, "large_scale_100k");
        assert_eq!(entries[1].module, "large_scale");
    }

    #[test]
    fn registry_parse_rejects_empty() {
        assert!(parse_registry("pub fn nothing() {}").is_err());
    }

    #[test]
    fn format_templates_match_fixed_fragments_in_order() {
        assert!(format_matches("fig4_6_{name}_detail", "fig4_6_reno_detail"));
        assert!(format_matches("fig8_{label}", "fig8_exponential"));
        assert!(!format_matches("fig8_{label}", "fig9_uniform"));
        assert!(!format_matches(
            "fig4_6_{name}_detail",
            "fig4_6_reno_throughput"
        ));
        // Too little fixed text to be meaningful.
        assert!(!format_matches("{t:.1}", "fig8_uniform"));
        assert!(!format_matches("f{flows}_{proto}", "fig8_uniform"));
    }

    #[test]
    fn module_produces_accepts_literal_and_template() {
        let src = r#"fn f() { t.push(("fig10_fairness".to_string(), x)); let n = format!("fig10_{proto}"); }"#;
        assert!(module_produces(src, "fig10_fairness"));
        assert!(module_produces(src, "fig10_tcp"));
        assert!(!module_produces(src, "fig11_multihop"));
    }
}
