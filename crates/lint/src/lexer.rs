//! A lossless Rust lexer.
//!
//! The analyzer never needs a full parse: every rule in this crate is a
//! pattern over *tokens in context* (is this identifier inside a string?
//! a comment? a `#[cfg(test)]` region?). So the lexer's contract is
//! deliberately minimal and checkable:
//!
//! 1. **Lossless** — concatenating the text of every token reproduces
//!    the input byte-for-byte (asserted in tests and cheap enough to
//!    assert in release runs too).
//! 2. **Classification-accurate** — comments, string/char literals,
//!    lifetimes, numbers, identifiers and punctuation are distinguished
//!    well enough that no rule can be fooled by an `Instant::now` inside
//!    a doc comment or a `"HashMap"` inside a string literal.
//!
//! The lexer handles the full literal grammar the workspace uses: nested
//! block comments, raw strings (`r#"…"#`), byte and raw-byte strings,
//! raw identifiers (`r#type`), char-vs-lifetime disambiguation, and
//! numeric literals with underscores, exponents and type suffixes.

/// What a token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Horizontal and vertical whitespace.
    Whitespace,
    /// `// …` to end of line (doc comments included).
    LineComment,
    /// `/* … */`, nesting tracked.
    BlockComment,
    /// Identifier or keyword (raw identifiers included).
    Ident,
    /// `'a`, `'_`, `'static` — a lifetime, not a char literal.
    Lifetime,
    /// Integer literal, any base, with suffix.
    Int,
    /// Float literal (decimal point, exponent, or `f32`/`f64` suffix).
    Float,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// One punctuation token; multi-char operators (`::`, `==`, `!=`,
    /// `->`, …) are a single token.
    Punct,
}

/// One token: a classified byte range of the source.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of the token's first byte.
    pub line: u32,
}

impl Token {
    /// Whether the token carries no syntactic weight.
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

/// Multi-character punctuation, longest first so greedy matching is
/// correct. Single characters fall through to a one-byte `Punct`.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if !pred(c) {
                break;
            }
            self.bump();
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s)
    }
}

/// Tokenizes `src` completely. Never fails: unterminated literals extend
/// to end of input, and unknown bytes become one-byte `Punct` tokens, so
/// the lossless property holds even for invalid source.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src,
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let start = cur.pos;
        let line = cur.line;
        let kind = lex_one(&mut cur, c);
        debug_assert!(cur.pos > start, "lexer must always make progress");
        out.push(Token {
            kind,
            start,
            end: cur.pos,
            line,
        });
    }
    out
}

fn lex_one(cur: &mut Cursor<'_>, c: char) -> TokenKind {
    if c.is_whitespace() {
        cur.eat_while(|c| c.is_whitespace());
        return TokenKind::Whitespace;
    }
    if cur.starts_with("//") {
        cur.eat_while(|c| c != '\n');
        return TokenKind::LineComment;
    }
    if cur.starts_with("/*") {
        cur.bump();
        cur.bump();
        let mut depth = 1u32;
        while depth > 0 {
            if cur.starts_with("/*") {
                cur.bump();
                cur.bump();
                depth += 1;
            } else if cur.starts_with("*/") {
                cur.bump();
                cur.bump();
                depth -= 1;
            } else if cur.bump().is_none() {
                break; // unterminated: extend to EOF
            }
        }
        return TokenKind::BlockComment;
    }
    // String-ish prefixes must be checked before the generic ident path:
    // r"…", r#"…"#, b"…", br#"…"#, b'…', c"…", and raw idents r#name.
    if matches!(c, 'r' | 'b' | 'c') {
        if let Some(kind) = try_lex_prefixed_literal(cur) {
            return kind;
        }
    }
    if c == '"' {
        lex_string_body(cur, 0);
        return TokenKind::Str;
    }
    if c == '\'' {
        return lex_quote(cur);
    }
    if c.is_ascii_digit() {
        return lex_number(cur);
    }
    if is_ident_start(c) {
        cur.eat_while(is_ident_continue);
        return TokenKind::Ident;
    }
    for op in MULTI_PUNCT {
        if cur.starts_with(op) {
            for _ in 0..op.len() {
                cur.bump();
            }
            return TokenKind::Punct;
        }
    }
    cur.bump();
    TokenKind::Punct
}

/// Handles `r`/`b`/`c`-prefixed literals and raw identifiers. Returns
/// `None` when the prefix turns out to be a plain identifier, leaving the
/// cursor untouched.
fn try_lex_prefixed_literal(cur: &mut Cursor<'_>) -> Option<TokenKind> {
    let rest = &cur.src[cur.pos..];
    // Longest prefixes first: br / cr, then single letters.
    for prefix in ["br", "cr", "r", "b", "c"] {
        if !rest.starts_with(prefix) {
            continue;
        }
        let after = &rest[prefix.len()..];
        let raw_capable = prefix.contains('r');
        if after.starts_with('"') {
            for _ in 0..prefix.len() {
                cur.bump();
            }
            if raw_capable {
                lex_raw_string_body(cur, 0);
            } else {
                lex_string_body(cur, 0);
            }
            return Some(TokenKind::Str);
        }
        if raw_capable && after.starts_with('#') {
            let hashes = after.chars().take_while(|&c| c == '#').count();
            let past = after[hashes..].chars().next();
            if past == Some('"') {
                for _ in 0..prefix.len() + hashes {
                    cur.bump();
                }
                lex_raw_string_body(cur, hashes);
                return Some(TokenKind::Str);
            }
            if prefix == "r" && past.map(is_ident_start) == Some(true) {
                // Raw identifier r#name.
                cur.bump(); // r
                cur.bump(); // #
                cur.eat_while(is_ident_continue);
                return Some(TokenKind::Ident);
            }
        }
        if prefix == "b" && after.starts_with('\'') {
            cur.bump(); // b
            lex_quote(cur);
            return Some(TokenKind::Char);
        }
        // A prefix that matched textually but introduces no literal is
        // just the start of an identifier (`ready`, `bytes`, `cfg`…).
        break;
    }
    None
}

/// Consumes a `"…"` body (cursor on the opening quote), honoring
/// backslash escapes. `_hashes` is unused but keeps the signature shared.
fn lex_string_body(cur: &mut Cursor<'_>, _hashes: usize) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consumes a raw-string body `"…"###` with `hashes` trailing hashes
/// (cursor on the opening quote). No escapes.
fn lex_raw_string_body(cur: &mut Cursor<'_>, hashes: usize) {
    cur.bump(); // opening quote
    'outer: while let Some(c) = cur.bump() {
        if c == '"' {
            let mark = cur.pos;
            let mark_line = cur.line;
            for _ in 0..hashes {
                if cur.peek() == Some('#') {
                    cur.bump();
                } else {
                    cur.pos = mark;
                    cur.line = mark_line;
                    continue 'outer;
                }
            }
            break;
        }
    }
}

/// Disambiguates `'a'` (char) from `'a` (lifetime); cursor on the quote.
fn lex_quote(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // '
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: consume escape then to closing quote.
            cur.bump();
            cur.bump(); // the escaped character (or first of \u{…})
            cur.eat_while(|c| c != '\'');
            cur.bump();
            TokenKind::Char
        }
        Some(c) if is_ident_start(c) => {
            cur.eat_while(is_ident_continue);
            if cur.peek() == Some('\'') {
                cur.bump();
                TokenKind::Char
            } else {
                TokenKind::Lifetime
            }
        }
        Some(_) => {
            cur.bump(); // the character itself
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            TokenKind::Char
        }
        None => TokenKind::Punct, // stray quote at EOF
    }
}

fn lex_number(cur: &mut Cursor<'_>) -> TokenKind {
    let mut float = false;
    if cur.starts_with("0x") || cur.starts_with("0o") || cur.starts_with("0b") {
        cur.bump();
        cur.bump();
        cur.eat_while(|c| c.is_ascii_hexdigit() || c == '_');
    } else {
        cur.eat_while(|c| c.is_ascii_digit() || c == '_');
        if cur.peek() == Some('.') {
            // `1.5` and `1.` are floats; `1..n` is a range and `1.max`
            // would be a method position — both leave the dot alone.
            match cur.peek_at(1) {
                Some(c) if c.is_ascii_digit() => {
                    cur.bump();
                    cur.eat_while(|c| c.is_ascii_digit() || c == '_');
                    float = true;
                }
                Some('.') => {}
                Some(c) if is_ident_start(c) => {}
                _ => {
                    cur.bump();
                    float = true;
                }
            }
        }
        if matches!(cur.peek(), Some('e' | 'E')) {
            let (sign_ofs, digit_ofs) = match cur.peek_at(1) {
                Some('+' | '-') => (1, 2),
                _ => (0, 1),
            };
            if cur.peek_at(digit_ofs).is_some_and(|c| c.is_ascii_digit()) {
                for _ in 0..=sign_ofs {
                    cur.bump();
                }
                cur.eat_while(|c| c.is_ascii_digit() || c == '_');
                float = true;
            }
        }
    }
    // Type suffix (`u64`, `f32`, `usize`…): part of the literal token.
    let suffix_start = cur.pos;
    if cur.peek().is_some_and(is_ident_start) {
        cur.eat_while(is_ident_continue);
    }
    let suffix = &cur.src[suffix_start..cur.pos];
    if suffix == "f32" || suffix == "f64" {
        float = true;
    }
    if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

/// Parses the numeric value of a *decimal* integer literal token's text,
/// ignoring underscores and any type suffix. Returns `None` for other
/// bases (hex seeds and bit masks are never unit-bearing quantities).
pub fn decimal_int_value(text: &str) -> Option<u128> {
    if text.starts_with("0x") || text.starts_with("0o") || text.starts_with("0b") {
        return None;
    }
    let digits: String = text
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '_')
        .filter(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, src[t.start..t.end].to_string()))
            .collect()
    }

    fn reassemble(src: &str) -> String {
        lex(src).iter().map(|t| &src[t.start..t.end]).collect()
    }

    #[test]
    fn lossless_on_tricky_input() {
        let src = r##"
//! doc
fn main() {
    let s = "str with \" quote and // not a comment";
    let r = r#"raw "inner" text"#;
    let b = b"bytes"; let bc = b'\n';
    let c = 'x'; let l: &'static str = "s";
    let f = 1.5e-3f64; let i = 1_000_000u64; let h = 0xFF;
    /* block /* nested */ still comment */
    let range = 0..10; let t = x.0;
}
"##;
        assert_eq!(reassemble(src), src);
    }

    #[test]
    fn comments_and_strings_hide_code() {
        let toks = texts(r#"let a = "Instant::now()"; // Instant::now()"#);
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["let", "a"]);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::LineComment && t.contains("Instant")));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = texts("fn f<'a>(x: &'a str) { let c = 'a'; let u = '\\u{1F600}'; }");
        let lifetimes = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .count();
        let chars = toks.iter().filter(|(k, _)| *k == TokenKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn number_classification() {
        for (src, kind) in [
            ("42", TokenKind::Int),
            ("1_000_000", TokenKind::Int),
            ("0xDEAD_BEEF", TokenKind::Int),
            ("7u64", TokenKind::Int),
            ("1.0", TokenKind::Float),
            ("1.", TokenKind::Float),
            ("1e9", TokenKind::Float),
            ("2.5e-3", TokenKind::Float),
            ("1f64", TokenKind::Float),
        ] {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src}");
            assert_eq!(toks[0].kind, kind, "{src}");
        }
        // Ranges do not glue the dot onto the number.
        let toks = texts("0..10");
        assert_eq!(toks[0], (TokenKind::Int, "0".into()));
        assert_eq!(toks[1], (TokenKind::Punct, "..".into()));
    }

    #[test]
    fn multi_char_punct_is_one_token() {
        let toks = texts("a == b != c :: d -> e");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, ["==", "!=", "::", "->"]);
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let toks = texts("let r#type = 1;");
        assert!(toks.contains(&(TokenKind::Ident, "r#type".into())));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let src = "a\nb\n  c /* x\ny */ d";
        let lines: Vec<(String, u32)> = lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (src[t.start..t.end].to_string(), t.line))
            .collect();
        assert_eq!(
            lines,
            [
                ("a".into(), 1),
                ("b".into(), 2),
                ("c".into(), 3),
                ("/* x\ny */".into(), 3),
                ("d".into(), 4),
            ]
        );
    }

    #[test]
    fn decimal_int_values() {
        assert_eq!(decimal_int_value("1_000_000"), Some(1_000_000));
        assert_eq!(decimal_int_value("42u64"), Some(42));
        assert_eq!(decimal_int_value("0xFF"), None);
    }

    #[test]
    fn unterminated_literals_extend_to_eof_losslessly() {
        for src in ["\"never closed", "/* never closed", "r#\"raw", "'"] {
            assert_eq!(reassemble(src), src, "{src:?}");
        }
    }
}
