//! Per-file context: what role a file plays, which byte ranges are test
//! code, and which diagnostics the author has suppressed inline.
//!
//! Context is what separates this analyzer from `grep`: `unwrap()` is
//! fine in a `#[cfg(test)]` module, `Instant::now()` in a string literal
//! is not a wall-clock read, and a suppression comment must carry a
//! reason or it does not count.

use crate::lexer::{lex, Token, TokenKind};

/// How a file participates in the build, which decides rule defaults
/// (panics are legal in tests and binaries, not in libraries).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileRole {
    /// Library source: part of a crate other code links against.
    Lib,
    /// Binary source (`src/main.rs`, `src/bin/*.rs`).
    Bin,
    /// Integration tests, benches, examples, fixtures.
    TestLike,
}

/// One parsed `// trim-lint: allow(...)` comment.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// The rule name being allowed (e.g. `no-wall-clock`).
    pub rule: String,
    /// `allow-file(...)` covers the whole file; `allow(...)` covers one
    /// line.
    pub file_scope: bool,
    /// The mandatory justification. `None` means the suppression is
    /// invalid: it is reported (TL007) and does **not** suppress.
    pub reason: Option<String>,
    /// Line of the comment itself.
    pub comment_line: u32,
    /// The line whose diagnostics this suppression covers: the comment's
    /// own line when it trails code, otherwise the next code line.
    pub target_line: u32,
    /// Set when a diagnostic was actually suppressed; unused valid
    /// suppressions are themselves reported (TL008).
    pub used: bool,
}

/// A lexed source file plus everything rules need to judge it.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across OSes
    /// for diagnostics and config matching).
    pub rel_path: String,
    /// The raw source.
    pub src: String,
    /// Lossless token stream.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the non-trivia tokens.
    pub sig: Vec<usize>,
    /// Build role.
    pub role: FileRole,
    /// Byte ranges covered by `#[test]` / `#[cfg(test)]` items.
    pub test_regions: Vec<(usize, usize)>,
    /// Parsed suppression comments, in file order.
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Lexes and analyzes one file under its default role.
    pub fn analyze(rel_path: &str, src: String) -> Self {
        Self::analyze_as(rel_path, src, classify_role(rel_path))
    }

    /// Lexes and analyzes one file with an explicit role (fixture tests
    /// exercise library-only rules on files stored under `tests/`).
    pub fn analyze_as(rel_path: &str, src: String, role: FileRole) -> Self {
        let tokens = lex(&src);
        let sig: Vec<usize> = (0..tokens.len())
            .filter(|&i| !tokens[i].is_trivia())
            .collect();
        let test_regions = find_test_regions(&src, &tokens, &sig);
        let suppressions = parse_suppressions(&src, &tokens);
        SourceFile {
            rel_path: rel_path.to_string(),
            src,
            tokens,
            sig,
            role,
            test_regions,
            suppressions,
        }
    }

    /// Text of a token.
    pub fn text(&self, t: &Token) -> &str {
        &self.src[t.start..t.end]
    }

    /// Whether byte offset `pos` falls inside test-only code.
    pub fn in_test_region(&self, pos: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| pos >= s && pos < e)
    }

    /// Whether this file is a crate root (`src/lib.rs` or `src/main.rs`
    /// directly under a package's `src/`), where inner attributes like
    /// `#![forbid(unsafe_code)]` must live.
    pub fn is_crate_root(&self) -> bool {
        self.rel_path.ends_with("src/lib.rs") || self.rel_path.ends_with("src/main.rs")
    }
}

/// Classifies a workspace-relative path into a [`FileRole`].
pub fn classify_role(rel_path: &str) -> FileRole {
    let p = rel_path;
    if p.contains("/tests/")
        || p.starts_with("tests/")
        || p.contains("/benches/")
        || p.starts_with("benches/")
        || p.contains("/examples/")
        || p.starts_with("examples/")
    {
        return FileRole::TestLike;
    }
    if p.contains("/src/bin/") || p.ends_with("src/main.rs") || p.ends_with("build.rs") {
        return FileRole::Bin;
    }
    FileRole::Lib
}

/// One-byte punct check: token `i` is exactly the ASCII byte `b`.
fn is_punct(src: &str, t: &Token, b: u8) -> bool {
    t.kind == TokenKind::Punct && t.end - t.start == 1 && src.as_bytes()[t.start] == b
}

/// Finds the byte ranges of items gated to test builds.
///
/// The scan walks significant tokens looking for outer attributes
/// (`#[…]`). An attribute marks a test item when its tokens contain the
/// identifier `test` *outside* any `not(…)` group — this accepts
/// `#[test]`, `#[cfg(test)]`, and `#[cfg(any(test, …))]`, while leaving
/// `#[cfg(not(test))]` (code that exists only in real builds) alone. The
/// region extends from the attribute through the item's body: the
/// matching `}` of the first `{` after the attributes, or the
/// terminating `;` for bodiless items.
fn find_test_regions(src: &str, tokens: &[Token], sig: &[usize]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut k = 0usize;
    while k < sig.len() {
        if !is_attr_start(src, tokens, sig, k) {
            k += 1;
            continue;
        }
        let (attr_end_k, is_test) = scan_attr(src, tokens, sig, k);
        if is_test {
            if let Some(end) = item_end(src, tokens, sig, attr_end_k + 1) {
                regions.push((tokens[sig[k]].start, end));
                // Skip the whole region: attributes inside the body are
                // already covered.
                while k < sig.len() && tokens[sig[k]].start < end {
                    k += 1;
                }
                continue;
            }
        }
        k = attr_end_k + 1;
    }
    regions
}

/// True when `sig[k]` begins an outer attribute `#[` (inner attributes
/// `#![…]` have a `!` between and do not match).
fn is_attr_start(src: &str, tokens: &[Token], sig: &[usize], k: usize) -> bool {
    k + 1 < sig.len()
        && is_punct(src, &tokens[sig[k]], b'#')
        && is_punct(src, &tokens[sig[k + 1]], b'[')
}

/// Scans the attribute starting at `sig[k]` (the `#`), returning the sig
/// index of its closing `]` and whether the attribute gates test code.
fn scan_attr(src: &str, tokens: &[Token], sig: &[usize], k: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut saw_test = false;
    let mut not_depth: Option<i32> = None;
    let mut prev_was_not = false;
    let mut j = k + 1; // at `[`
    while j < sig.len() {
        let t = &tokens[sig[j]];
        if is_punct(src, t, b'[') {
            depth += 1;
        } else if is_punct(src, t, b']') {
            depth -= 1;
            if depth == 0 {
                return (j, saw_test);
            }
        } else if is_punct(src, t, b'(') {
            if prev_was_not && not_depth.is_none() {
                not_depth = Some(depth);
            }
            depth += 1;
        } else if is_punct(src, t, b')') {
            depth -= 1;
            if not_depth == Some(depth) {
                not_depth = None;
            }
        }
        if t.kind == TokenKind::Ident {
            let text = &src[t.start..t.end];
            prev_was_not = text == "not";
            if text == "test" && not_depth.is_none() {
                saw_test = true;
            }
        } else {
            prev_was_not = false;
        }
        j += 1;
    }
    (j.saturating_sub(1), saw_test)
}

/// Byte offset one past the end of the item following an attribute:
/// the matching `}` of the first `{`, or the first `;` before any `{`.
fn item_end(src: &str, tokens: &[Token], sig: &[usize], mut k: usize) -> Option<usize> {
    // Skip further attributes stacked between the test attribute and the
    // item itself.
    while k < sig.len() && is_attr_start(src, tokens, sig, k) {
        let (end_k, _) = scan_attr(src, tokens, sig, k);
        k = end_k + 1;
    }
    let mut j = k;
    while j < sig.len() {
        let t = &tokens[sig[j]];
        if is_punct(src, t, b';') {
            return Some(t.end);
        }
        if is_punct(src, t, b'{') {
            let mut depth = 0i32;
            while j < sig.len() {
                let t = &tokens[sig[j]];
                if is_punct(src, t, b'{') {
                    depth += 1;
                } else if is_punct(src, t, b'}') {
                    depth -= 1;
                    if depth == 0 {
                        return Some(t.end);
                    }
                }
                j += 1;
            }
            return None;
        }
        j += 1;
    }
    None
}

/// Parses every `// trim-lint: allow(rule[, reason = "…"])` and
/// `// trim-lint: allow-file(rule, reason = "…")` comment.
fn parse_suppressions(src: &str, tokens: &[Token]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (idx, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let text = &src[t.start..t.end];
        let Some(body) = text
            .trim_start_matches('/')
            .trim()
            .strip_prefix("trim-lint:")
        else {
            continue;
        };
        let body = body.trim();
        let (file_scope, rest) = if let Some(r) = body.strip_prefix("allow-file") {
            (true, r)
        } else if let Some(r) = body.strip_prefix("allow") {
            (false, r)
        } else {
            // `trim-lint:` followed by anything else is a typo that must
            // fail loudly, not silently not-suppress.
            out.push(Suppression {
                rule: body.split(['(', ' ']).next().unwrap_or("").to_string(),
                file_scope: false,
                reason: None,
                comment_line: t.line,
                target_line: t.line,
                used: false,
            });
            continue;
        };
        let inner = rest
            .trim()
            .strip_prefix('(')
            .and_then(|r| r.rfind(')').map(|i| &r[..i]));
        let (rule, reason) = match inner {
            Some(inner) => parse_allow_args(inner),
            None => (String::new(), None),
        };
        // A comment trailing code on its own line covers that line;
        // a comment alone on a line covers the next code line.
        let trails_code = tokens[..idx]
            .iter()
            .any(|p| !p.is_trivia() && line_of_end(src, p) == t.line);
        let target_line = if trails_code {
            t.line
        } else {
            tokens[idx + 1..]
                .iter()
                .find(|n| !n.is_trivia())
                .map(|n| n.line)
                .unwrap_or(t.line)
        };
        out.push(Suppression {
            rule,
            file_scope,
            reason,
            comment_line: t.line,
            target_line,
            used: false,
        });
    }
    out
}

/// Line on which a token *ends* (tokens can span lines).
fn line_of_end(src: &str, t: &Token) -> u32 {
    t.line + src[t.start..t.end].matches('\n').count() as u32
}

/// Splits `rule, reason = "…"` into its parts. An empty reason string
/// counts as missing: "because" is not a justification.
fn parse_allow_args(inner: &str) -> (String, Option<String>) {
    let mut parts = inner.splitn(2, ',');
    let rule = parts.next().unwrap_or("").trim().to_string();
    let reason = parts.next().and_then(|r| {
        let r = r.trim();
        let r = r.strip_prefix("reason")?.trim_start();
        let r = r.strip_prefix('=')?.trim_start();
        let r = r.strip_prefix('"')?;
        let end = r.rfind('"')?;
        let val = r[..end].to_string();
        if val.is_empty() {
            None
        } else {
            Some(val)
        }
    });
    (rule, reason)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_classification() {
        assert_eq!(classify_role("crates/netsim/src/queue.rs"), FileRole::Lib);
        assert_eq!(classify_role("crates/bench/src/bin/x.rs"), FileRole::Bin);
        assert_eq!(classify_role("crates/fuzz/src/main.rs"), FileRole::Bin);
        assert_eq!(
            classify_role("crates/bench/tests/golden.rs"),
            FileRole::TestLike
        );
        assert_eq!(classify_role("tests/cross_crate.rs"), FileRole::TestLike);
        assert_eq!(classify_role("examples/incast.rs"), FileRole::TestLike);
        assert_eq!(
            classify_role("crates/bench/benches/micro.rs"),
            FileRole::TestLike
        );
        assert_eq!(classify_role("src/lib.rs"), FileRole::Lib);
    }

    #[test]
    fn test_region_covers_cfg_test_module() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n  fn t() { y.unwrap(); }\n}\n\
                   fn after() {}\n";
        let f = SourceFile::analyze("crates/x/src/lib.rs", src.to_string());
        assert_eq!(f.test_regions.len(), 1);
        let live = src.find("x.unwrap").unwrap();
        let test = src.find("y.unwrap").unwrap();
        let after = src.find("after").unwrap();
        assert!(!f.in_test_region(live));
        assert!(f.in_test_region(test));
        assert!(!f.in_test_region(after));
    }

    #[test]
    fn test_region_covers_test_fn_and_stacked_attrs() {
        let src = "#[test]\n#[should_panic]\nfn boom() { panic!(\"x\") }\nfn fine() {}\n";
        let f = SourceFile::analyze("crates/x/src/lib.rs", src.to_string());
        assert!(f.in_test_region(src.find("panic!").unwrap()));
        assert!(!f.in_test_region(src.find("fine").unwrap()));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn real() { x.unwrap(); }\n";
        let f = SourceFile::analyze("crates/x/src/lib.rs", src.to_string());
        assert!(f.test_regions.is_empty());
    }

    #[test]
    fn cfg_any_with_test_is_a_test_region() {
        let src = "#[cfg(any(test, feature = \"slow\"))]\nmod helpers { fn h() {} }\n";
        let f = SourceFile::analyze("crates/x/src/lib.rs", src.to_string());
        assert_eq!(f.test_regions.len(), 1);
    }

    #[test]
    fn bodiless_test_gated_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn after() {}\n";
        let f = SourceFile::analyze("crates/x/src/lib.rs", src.to_string());
        assert!(f.in_test_region(src.find("HashMap").unwrap()));
        assert!(!f.in_test_region(src.find("after").unwrap()));
    }

    #[test]
    fn suppression_trailing_and_preceding() {
        let src = "let a = f(); // trim-lint: allow(no-float-eq, reason = \"exact guard\")\n\
                   // trim-lint: allow(no-wall-clock, reason = \"progress only\")\n\
                   let b = g();\n";
        let f = SourceFile::analyze("crates/x/src/lib.rs", src.to_string());
        assert_eq!(f.suppressions.len(), 2);
        assert_eq!(f.suppressions[0].rule, "no-float-eq");
        assert_eq!(f.suppressions[0].target_line, 1);
        assert_eq!(f.suppressions[0].reason.as_deref(), Some("exact guard"));
        assert_eq!(f.suppressions[1].rule, "no-wall-clock");
        assert_eq!(f.suppressions[1].target_line, 3);
    }

    #[test]
    fn suppression_without_reason_is_invalid() {
        let src = "// trim-lint: allow(no-panic-in-library)\nlet a = x.unwrap();\n";
        let f = SourceFile::analyze("crates/x/src/lib.rs", src.to_string());
        assert_eq!(f.suppressions.len(), 1);
        assert!(f.suppressions[0].reason.is_none());
    }

    #[test]
    fn allow_file_scope() {
        let src = "// trim-lint: allow-file(no-unordered-iteration, reason = \"defines FastHashMap\")\nuse std::collections::HashMap;\n";
        let f = SourceFile::analyze("crates/x/src/lib.rs", src.to_string());
        assert!(f.suppressions[0].file_scope);
    }
}
