//! The rule catalog and the per-file checking driver.
//!
//! Every rule is a pattern over significant tokens plus file context.
//! The driver runs each enabled rule, applies inline suppressions, and
//! then judges the suppressions themselves: a suppression without a
//! reason is rejected (TL007, and the underlying diagnostic still
//! fires), and a suppression that suppressed nothing is dead weight
//! (TL008).

use crate::config::Config;
use crate::context::{FileRole, SourceFile};
use crate::diag::Diagnostic;
use crate::lexer::{decimal_int_value, TokenKind};

/// Descriptor of one rule, for `--list-rules` and the docs.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Stable diagnostic code.
    pub code: &'static str,
    /// Name used in `Lint.toml` sections and suppressions.
    pub name: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// The source-level rules, in code order.
pub const SOURCE_RULES: &[RuleInfo] = &[
    RuleInfo {
        code: "TL001",
        name: "no-wall-clock",
        summary: "Instant::now()/SystemTime are forbidden outside the harness allowlist: \
                  wall-clock reads make runs irreproducible",
    },
    RuleInfo {
        code: "TL002",
        name: "no-unordered-iteration",
        summary: "std HashMap/HashSet are banned on simulation paths: iteration order is \
                  per-process random; use netsim's FastHashMap or a BTreeMap",
    },
    RuleInfo {
        code: "TL003",
        name: "no-float-eq",
        summary: "== / != on float operands; route comparisons through the Tolerance \
                  machinery in trim-check",
    },
    RuleInfo {
        code: "TL004",
        name: "no-panic-in-library",
        summary: "unwrap/expect/panic!/todo!/unimplemented! in library code; return a \
                  typed error or annotate why the panic is unreachable",
    },
    RuleInfo {
        code: "TL005",
        name: "no-raw-unit-literal",
        summary: "large bare numeric literal on a simulation path; construct times via \
                  Dur/SimTime and rates via Bandwidth so units stay visible",
    },
    RuleInfo {
        code: "TL006",
        name: "forbid-unsafe",
        summary: "crate root lacks #![forbid(unsafe_code)]; every crate in this workspace \
                  compiles without unsafe and must stay that way",
    },
    RuleInfo {
        code: "TL007",
        name: "suppression-hygiene",
        summary: "malformed trim-lint suppression: unknown rule name or missing \
                  reason = \"...\" (a justification is mandatory)",
    },
    RuleInfo {
        code: "TL008",
        name: "unused-suppression",
        summary: "suppression that suppressed nothing; remove it so allows stay honest",
    },
];

/// The semantic (interprocedural) rules (`--semantic`), in code order.
/// Implemented in [`crate::taint`] over the call graph from
/// [`crate::callgraph`].
pub const SEMANTIC_RULES: &[RuleInfo] = &[
    RuleInfo {
        code: "TL201",
        name: "transitive-wall-clock",
        summary: "simulation-path fn whose call graph reaches Instant/SystemTime through \
                  helpers (direct uses are TL001's job); the report names the frontier \
                  fn where wall time enters the sim path",
    },
    RuleInfo {
        code: "TL202",
        name: "transitive-unordered-iteration",
        summary: "simulation-path fn whose call graph reaches std HashMap/HashSet \
                  through helpers; source-allow-paths vouches for deterministically \
                  keyed wrappers (netsim::hash) without exempting their callers",
    },
    RuleInfo {
        code: "TL203",
        name: "shard-safety",
        summary: "shared-mutable-state site in a sim crate (static mut, thread_local!, \
                  Rc/RefCell/Cell, interior-mutable static): the exact inventory the \
                  topology-sharding refactor must drain before threads touch these crates",
    },
    RuleInfo {
        code: "TL204",
        name: "unseeded-randomness",
        summary: "PRNG construction from ambient entropy (thread_rng/from_entropy/OsRng/\
                  RandomState) instead of the splitmix64 seed chain; reached directly or \
                  through helpers",
    },
    RuleInfo {
        code: "TL205",
        name: "monitor-coverage",
        summary: "MonitorEvent variant not emitted by any sim site or consumed by no \
                  monitor/test: dead telemetry or an invariant nobody checks",
    },
];

/// The artifact cross-checker rules (`--artifacts`), in code order.
pub const ARTIFACT_RULES: &[RuleInfo] = &[
    RuleInfo {
        code: "TL101",
        name: "artifact-experiment-doc",
        summary: "registered experiment has no EXPERIMENTS.md section heading",
    },
    RuleInfo {
        code: "TL102",
        name: "artifact-results-csv",
        summary: "declared results CSV missing from results/, or committed CSV declared \
                  by no experiment",
    },
    RuleInfo {
        code: "TL103",
        name: "artifact-stale-declaration",
        summary: "artifact declared in the registry but never produced by its experiment \
                  module",
    },
    RuleInfo {
        code: "TL104",
        name: "artifact-corpus-spec",
        summary: "corpus spec fails trim_workload::spec validation or text round-trip",
    },
];

/// Rules an inline suppression may name: the first six source rules
/// plus every semantic rule (the hygiene rules themselves are not
/// suppressible; artifact findings have no source line to attach a
/// comment to).
pub fn suppressible(name: &str) -> bool {
    SOURCE_RULES[..6]
        .iter()
        .chain(SEMANTIC_RULES)
        .any(|r| r.name == name)
}

/// Whether a rule name belongs to the semantic (`TL2xx`) family, whose
/// suppressions only the `--semantic` pass can mark used.
pub fn is_semantic(name: &str) -> bool {
    SEMANTIC_RULES.iter().any(|r| r.name == name)
}

pub(crate) fn info(name: &str) -> &'static RuleInfo {
    SOURCE_RULES
        .iter()
        .chain(SEMANTIC_RULES)
        .chain(ARTIFACT_RULES)
        .find(|r| r.name == name)
        .unwrap_or(&SOURCE_RULES[0])
}

fn diag(name: &'static str, file: &SourceFile, line: u32, message: String) -> Diagnostic {
    let ri = info(name);
    Diagnostic {
        code: ri.code,
        rule: ri.name,
        path: file.rel_path.clone(),
        line,
        message,
        severity: crate::diag::Severity::Deny,
    }
}

/// Checks one file: runs every rule enabled for it, applies inline
/// suppressions, and reports suppression-hygiene findings.
pub fn check_file(file: &mut SourceFile, cfg: &Config) -> Vec<Diagnostic> {
    let mut raw = Vec::new();
    if cfg.rule_applies("no-wall-clock", &file.rel_path) {
        no_wall_clock(file, &mut raw);
    }
    if cfg.rule_applies("no-unordered-iteration", &file.rel_path) {
        no_unordered_iteration(file, &mut raw);
    }
    if cfg.rule_applies("no-float-eq", &file.rel_path) {
        no_float_eq(file, &mut raw);
    }
    if cfg.rule_applies("no-panic-in-library", &file.rel_path) {
        no_panic_in_library(file, &mut raw);
    }
    if cfg.rule_applies("no-raw-unit-literal", &file.rel_path) {
        no_raw_unit_literal(file, &mut raw);
    }
    if cfg.rule_applies("forbid-unsafe", &file.rel_path) {
        forbid_unsafe(file, &mut raw);
    }

    // Apply suppressions: a diagnostic is dropped when a *valid*
    // suppression for its rule covers its line (or the whole file).
    let mut out = Vec::new();
    for d in raw {
        let mut hit = false;
        for s in file.suppressions.iter_mut() {
            if s.reason.is_some() && s.rule == d.rule && (s.file_scope || s.target_line == d.line) {
                s.used = true;
                hit = true;
            }
        }
        if !hit {
            out.push(d);
        }
    }

    // Judge the suppressions themselves. Suppressions of semantic
    // (TL2xx) rules are exempt from the unused check here: only the
    // `--semantic` pass can tell whether they suppressed anything, and
    // it reports its own TL008s.
    for s in &file.suppressions {
        if !suppressible(&s.rule) {
            out.push(diag(
                "suppression-hygiene",
                file,
                s.comment_line,
                format!(
                    "suppression names unknown or non-suppressible rule `{}`; \
                     suppressible rules: {}",
                    s.rule,
                    SOURCE_RULES[..6]
                        .iter()
                        .chain(SEMANTIC_RULES)
                        .map(|r| r.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            ));
        } else if s.reason.is_none() {
            out.push(diag(
                "suppression-hygiene",
                file,
                s.comment_line,
                format!(
                    "suppression of `{}` has no reason; write \
                     `// trim-lint: allow({}, reason = \"...\")` — the diagnostic \
                     it targets is still reported",
                    s.rule, s.rule
                ),
            ));
        } else if !s.used && !is_semantic(&s.rule) {
            out.push(diag(
                "unused-suppression",
                file,
                s.comment_line,
                format!(
                    "suppression of `{}` matched no diagnostic on line {}; remove it",
                    s.rule, s.target_line
                ),
            ));
        }
    }
    out
}

/// Iterator over significant tokens as `(sig_index, line, text)`.
fn sig_texts<'a>(file: &'a SourceFile) -> impl Iterator<Item = (usize, u32, &'a str)> + 'a {
    file.sig.iter().enumerate().map(move |(k, &i)| {
        let t = &file.tokens[i];
        (k, t.line, file.text(t))
    })
}

fn sig_kind(file: &SourceFile, k: usize) -> Option<TokenKind> {
    file.sig.get(k).map(|&i| file.tokens[i].kind)
}

fn sig_text(file: &SourceFile, k: usize) -> Option<&str> {
    file.sig.get(k).map(|&i| file.text(&file.tokens[i]))
}

fn sig_start(file: &SourceFile, k: usize) -> usize {
    file.tokens[file.sig[k]].start
}

/// TL001: `Instant::now` call paths and any `SystemTime` mention.
/// Applies to tests too — a wall-clock read in a test is how flaky
/// timing assertions are born; the config allowlist covers the harness
/// components whose job is wall-clock measurement.
fn no_wall_clock(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (k, line, text) in sig_texts(file) {
        let hit = match text {
            "Instant" => {
                sig_text(file, k + 1) == Some("::") && sig_text(file, k + 2) == Some("now")
            }
            "SystemTime" => true,
            _ => false,
        };
        if hit {
            out.push(diag(
                "no-wall-clock",
                file,
                line,
                format!(
                    "wall-clock read (`{text}`): simulation code must derive time from \
                     SimTime only; wall time belongs to the harness/perf allowlist"
                ),
            ));
        }
    }
}

/// TL002: any `HashMap`/`HashSet` identifier on a configured simulation
/// path. `FastHashMap`/`FastHashSet` (deterministically keyed) and
/// `BTreeMap` (ordered) are the sanctioned replacements.
fn no_unordered_iteration(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (_, line, text) in sig_texts(file) {
        if text == "HashMap" || text == "HashSet" {
            out.push(diag(
                "no-unordered-iteration",
                file,
                line,
                format!(
                    "std `{text}` on a simulation path: SipHash keys are per-process \
                     random, so iteration order can silently perturb results; use \
                     netsim::hash::Fast{text} or a BTree{}",
                    if text == "HashMap" { "Map" } else { "Set" }
                ),
            ));
        }
    }
}

/// TL003: `==`/`!=` with a float literal (or float constant path like
/// `f64::NAN`) on either side. Type-blind by design: the lexical cases
/// are the ones a reviewer also sees, and `clippy::float_cmp` (denied in
/// CI for library targets) covers the type-inferred remainder.
fn no_float_eq(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    const FLOAT_CONSTS: &[&str] = &["NAN", "INFINITY", "NEG_INFINITY", "EPSILON"];
    for (k, line, text) in sig_texts(file) {
        if text != "==" && text != "!=" {
            continue;
        }
        let prev_float = k > 0
            && (sig_kind(file, k - 1) == Some(TokenKind::Float)
                || sig_text(file, k - 1).is_some_and(|t| FLOAT_CONSTS.contains(&t)));
        let next_float = sig_kind(file, k + 1) == Some(TokenKind::Float)
            || (sig_text(file, k + 1).is_some_and(|t| t == "f64" || t == "f32")
                && sig_text(file, k + 2) == Some("::"));
        if prev_float || next_float {
            out.push(diag(
                "no-float-eq",
                file,
                line,
                format!(
                    "exact float comparison (`{text}`): floating-point equality is \
                     representation-dependent; compare through trim_check's Tolerance \
                     (or annotate why exactness is the point)"
                ),
            ));
        }
    }
}

/// TL004: panicking constructs in library code (not tests, not
/// binaries). `unwrap_or*` and `expect_err` are distinct identifiers and
/// never match; `assert!`/`debug_assert!` are deliberate invariant
/// checks and stay legal.
fn no_panic_in_library(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.role != FileRole::Lib {
        return;
    }
    for (k, line, text) in sig_texts(file) {
        let pos = sig_start(file, k);
        if file.in_test_region(pos) {
            continue;
        }
        let hit = match text {
            "unwrap" | "expect" => {
                k > 0 && sig_text(file, k - 1) == Some(".") && sig_text(file, k + 1) == Some("(")
            }
            "panic" | "todo" | "unimplemented" => sig_text(file, k + 1) == Some("!"),
            _ => false,
        };
        if hit {
            out.push(diag(
                "no-panic-in-library",
                file,
                line,
                format!(
                    "`{text}` in library code: a poisoned run should surface as a typed \
                     error, not abort the campaign; return Result or annotate why this \
                     cannot fire"
                ),
            ));
        }
    }
}

/// TL005: bare decimal integer literals >= 1_000_000 outside tests on a
/// configured simulation path. Magnitudes that large are invariably
/// nanoseconds, bits-per-second or byte counts; constructing them via
/// `Dur`/`SimTime`/`Bandwidth` keeps the unit in the type. Hex/octal
/// literals (seeds, masks) are exempt.
fn no_raw_unit_literal(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    const THRESHOLD: u128 = 1_000_000;
    for (k, line, text) in sig_texts(file) {
        if sig_kind(file, k) != Some(TokenKind::Int) {
            continue;
        }
        if file.in_test_region(sig_start(file, k)) {
            continue;
        }
        if decimal_int_value(text).is_some_and(|v| v >= THRESHOLD) {
            out.push(diag(
                "no-raw-unit-literal",
                file,
                line,
                format!(
                    "bare literal `{text}` on a simulation path: a magnitude this large \
                     is a unit in disguise; build it with Dur/SimTime/Bandwidth \
                     constructors so the unit is checked"
                ),
            ));
        }
    }
}

/// TL006: crate roots must carry `#![forbid(unsafe_code)]`. A crate
/// that someday needs unsafe downgrades to `deny` plus a documented
/// allow and lists its root under this rule's `allow-paths`.
fn forbid_unsafe(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.is_crate_root() {
        return;
    }
    let mut found = false;
    for (k, _, text) in sig_texts(file) {
        if text == "forbid"
            && sig_text(file, k + 1) == Some("(")
            && sig_text(file, k + 2) == Some("unsafe_code")
        {
            found = true;
            break;
        }
    }
    if !found {
        out.push(diag(
            "forbid-unsafe",
            file,
            1,
            "crate root lacks `#![forbid(unsafe_code)]`: this workspace is 100% safe \
             Rust and regressions must be deliberate (deny + documented allow + \
             Lint.toml allow-paths)"
                .to_string(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel_path: &str, src: &str) -> Vec<Diagnostic> {
        run_cfg(rel_path, src, &test_config())
    }

    fn run_cfg(rel_path: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
        let mut f = SourceFile::analyze(rel_path, src.to_string());
        check_file(&mut f, cfg)
    }

    fn test_config() -> Config {
        Config::parse(
            r#"
[no-wall-clock]
allow-paths = ["crates/harness"]
[no-unordered-iteration]
apply-paths = ["crates/netsim", "crates/check"]
[no-raw-unit-literal]
apply-paths = ["crates/netsim"]
"#,
        )
        .unwrap()
    }

    #[test]
    fn wall_clock_hits_and_allowlist() {
        let src = "fn f() { let t = Instant::now(); }";
        let d = run("crates/bench/src/drive.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "TL001");
        assert!(run("crates/harness/src/engine.rs", src).is_empty());
        // Mentions in strings/comments never fire.
        assert!(run(
            "crates/bench/src/drive.rs",
            "// Instant::now()\nfn f() { let s = \"SystemTime\"; }"
        )
        .is_empty());
    }

    #[test]
    fn unordered_iteration_scoped_to_sim_paths() {
        let src = "use std::collections::HashMap;\nfn f(m: HashMap<u32, u32>) {}";
        assert_eq!(run("crates/netsim/src/sim.rs", src).len(), 2);
        assert!(run("crates/harness/src/store.rs", src).is_empty());
    }

    #[test]
    fn float_eq_adjacency() {
        let d = run("crates/core/src/x.rs", "fn f(a: f64) -> bool { a == 0.0 }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "TL003");
        assert_eq!(
            run("crates/core/src/x.rs", "fn f(a: f64) { if 1.5 != a {} }").len(),
            1
        );
        assert_eq!(
            run(
                "crates/core/src/x.rs",
                "fn f(a: f64) { let _ = a == f64::NAN; }"
            )
            .len(),
            1
        );
        // Integer comparisons and range patterns stay silent.
        assert!(run("crates/core/src/x.rs", "fn f(a: u64) -> bool { a == 10 }").is_empty());
    }

    #[test]
    fn panic_rule_spares_tests_and_bins() {
        let lib = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(run("crates/core/src/a.rs", lib).len(), 1);
        assert!(run("crates/core/src/bin/tool.rs", lib).is_empty());
        assert!(run("crates/core/tests/it.rs", lib).is_empty());
        let test_mod = "#[cfg(test)]\nmod tests { fn t() { None::<u32>.unwrap(); } }";
        assert!(run("crates/core/src/a.rs", test_mod).is_empty());
        // unwrap_or is a different identifier.
        assert!(run(
            "crates/core/src/a.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }"
        )
        .is_empty());
    }

    #[test]
    fn raw_unit_literal_thresholds() {
        assert_eq!(
            run(
                "crates/netsim/src/chan.rs",
                "fn f() { let ns = 2_000_000; }"
            )
            .len(),
            1
        );
        assert!(run("crates/netsim/src/chan.rs", "fn f() { let n = 999_999; }").is_empty());
        // Hex masks/seeds exempt; other crates exempt.
        assert!(run(
            "crates/netsim/src/chan.rs",
            "fn f() { let s = 0x9e3779b97f4a7c15; }"
        )
        .is_empty());
        assert!(run("crates/tcp/src/conn.rs", "fn f() { let ns = 2_000_000; }").is_empty());
        // Test code exempt.
        assert!(run(
            "crates/netsim/src/chan.rs",
            "#[cfg(test)]\nmod t { fn f() { let ns = 2_000_000; } }"
        )
        .is_empty());
    }

    #[test]
    fn forbid_unsafe_only_on_crate_roots() {
        let d = run("crates/core/src/lib.rs", "pub fn f() {}");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "TL006");
        assert!(run(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}"
        )
        .is_empty());
        assert!(run("crates/core/src/other.rs", "pub fn f() {}").is_empty());
    }

    #[test]
    fn suppression_with_reason_suppresses_and_is_used() {
        let src = "fn f() { let t = Instant::now(); } \
                   // trim-lint: allow(no-wall-clock, reason = \"progress display only\")";
        assert!(run("crates/bench/src/drive.rs", src).is_empty());
    }

    #[test]
    fn suppression_without_reason_rejected_and_diag_kept() {
        let src = "// trim-lint: allow(no-wall-clock)\nfn f() { let t = Instant::now(); }";
        let d = run("crates/bench/src/drive.rs", src);
        let codes: Vec<_> = d.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"TL001"), "{codes:?}");
        assert!(codes.contains(&"TL007"), "{codes:?}");
    }

    #[test]
    fn unknown_rule_suppression_rejected() {
        let d = run(
            "crates/core/src/a.rs",
            "// trim-lint: allow(no-such-rule, reason = \"x\")\nfn f() {}",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "TL007");
    }

    #[test]
    fn unused_suppression_reported() {
        let d = run(
            "crates/core/src/a.rs",
            "// trim-lint: allow(no-wall-clock, reason = \"left over\")\nfn f() {}",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "TL008");
    }

    #[test]
    fn allow_file_covers_every_hit() {
        let src =
            "// trim-lint: allow-file(no-unordered-iteration, reason = \"defines the aliases\")\n\
                   use std::collections::{HashMap, HashSet};\n\
                   fn f(a: HashMap<u32, u32>, b: HashSet<u32>) {}";
        assert!(run("crates/netsim/src/hash.rs", src).is_empty());
    }

    #[test]
    fn rule_codes_are_unique_and_stable() {
        let mut codes: Vec<_> = SOURCE_RULES
            .iter()
            .chain(SEMANTIC_RULES)
            .chain(ARTIFACT_RULES)
            .map(|r| r.code)
            .collect();
        let n = codes.len();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), n);
        assert_eq!(SOURCE_RULES[0].code, "TL001");
        assert_eq!(SEMANTIC_RULES[0].code, "TL201");
        assert_eq!(ARTIFACT_RULES[0].code, "TL101");
    }

    #[test]
    fn semantic_suppressions_pass_source_mode_hygiene() {
        // A TL2xx suppression is known (no TL007) and exempt from the
        // source-mode unused check (no TL008) — only `--semantic` can
        // judge whether it suppressed anything.
        let d = run(
            "crates/core/src/a.rs",
            "// trim-lint: allow(transitive-wall-clock, reason = \"progress only\")\nfn f() {}",
        );
        assert!(d.is_empty(), "{d:?}");
        // …but a missing reason is still rejected here.
        let d = run(
            "crates/core/src/a.rs",
            "// trim-lint: allow(shard-safety)\nfn f() {}",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "TL007");
    }
}
