//! The conservative workspace call graph.
//!
//! For every function the parser found, this module scans its body
//! tokens for call sites and resolves them against the symbol table —
//! *conservatively* and *dependency-bounded*:
//!
//! - **Conservative**: a call that could reach several functions gets
//!   an edge to each candidate (method calls resolve by name to every
//!   method of that name in scope; re-exports resolve by path-suffix
//!   matching). Over-approximation can only ever *add* taint, never
//!   hide it.
//! - **Dependency-bounded**: candidates are restricted to the caller's
//!   crate plus its transitive Cargo dependencies (dev-dependencies for
//!   test code). A name collision with a crate the caller does not link
//!   against cannot fabricate an edge the real build could never take —
//!   this is what keeps the over-approximation useful instead of
//!   drowning the taint pass in phantom paths.
//!
//! Calls into `std`/`core`/`alloc` are recorded as *external* paths
//! (`std::time::Instant::now`); the taint pass has its own token-level
//! source detection, so externals in the dump are informational — they
//! make the `--callgraph` JSON diffable before/after a refactor.

use std::collections::{BTreeMap, BTreeSet};

use crate::context::SourceFile;
use crate::lexer::TokenKind;
use crate::parser::ParsedFile;
use crate::symbols::{CrateGraph, FnSym, SymbolTable};

/// Out-edges of one function.
#[derive(Clone, Debug, Default)]
pub struct FnEdges {
    /// Resolved workspace callees (function ids).
    pub calls: BTreeSet<usize>,
    /// External (std/core/alloc) call paths, as written.
    pub externals: BTreeSet<String>,
    /// Method names that resolved to nothing in scope (dump-only; these
    /// are std/trait methods like `push` on `Vec`).
    pub unresolved_methods: usize,
}

/// The whole graph: `edges[i]` are the out-edges of `symbols.fns[i]`.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Per-function edges, indexed by function id.
    pub edges: Vec<FnEdges>,
    /// Reverse adjacency: for each function, the ids of its callers.
    pub callers: Vec<Vec<usize>>,
}

/// Roots every path can start from: crate-relative keywords plus the
/// external namespaces we classify rather than resolve.
const EXTERNAL_ROOTS: &[&str] = &["std", "core", "alloc"];

/// Builds the call graph over all parsed files.
pub fn build(
    graph: &CrateGraph,
    table: &SymbolTable,
    files: &[(SourceFile, ParsedFile)],
) -> CallGraph {
    // Per-file import maps, keyed by rel path.
    let mut imports: BTreeMap<&str, FileImports> = BTreeMap::new();
    for (src, parsed) in files {
        imports.insert(src.rel_path.as_str(), FileImports::new(parsed));
    }
    let by_path: BTreeMap<&str, &SourceFile> = files
        .iter()
        .map(|(s, _)| (s.rel_path.as_str(), s))
        .collect();

    let mut edges = vec![FnEdges::default(); table.fns.len()];
    for f in &table.fns {
        let Some(body) = f.body else {
            continue;
        };
        let Some(src) = by_path.get(f.file.as_str()) else {
            continue;
        };
        let imp = imports
            .get(f.file.as_str())
            .expect("imports built for every file");
        let resolver = Resolver {
            graph,
            table,
            caller: f,
            imports: imp,
            visible: graph.visible_from(&f.krate, f.test_like || f.in_test),
        };
        extract_calls(src, body, &resolver, &mut edges[f.id]);
    }

    let mut callers = vec![Vec::new(); table.fns.len()];
    for (id, e) in edges.iter().enumerate() {
        for &callee in &e.calls {
            callers[callee].push(id);
        }
    }
    CallGraph { edges, callers }
}

/// Import bindings of one file (module-level `use`s flattened to file
/// scope — conservative for resolution).
struct FileImports {
    by_local: BTreeMap<String, Vec<String>>,
    globs: Vec<Vec<String>>,
}

impl FileImports {
    fn new(parsed: &ParsedFile) -> FileImports {
        let mut by_local = BTreeMap::new();
        let mut globs = Vec::new();
        for u in &parsed.uses {
            if u.glob {
                globs.push(u.path.clone());
            } else if !u.local.is_empty() {
                by_local.insert(u.local.clone(), u.path.clone());
            }
        }
        FileImports { by_local, globs }
    }
}

struct Resolver<'a> {
    graph: &'a CrateGraph,
    table: &'a SymbolTable,
    caller: &'a FnSym,
    imports: &'a FileImports,
    visible: Vec<String>,
}

impl Resolver<'_> {
    fn is_visible(&self, krate: &str) -> bool {
        self.visible.iter().any(|v| v == krate)
    }

    /// Resolves a path call (`a::b::f(…)`). Returns resolved fn ids
    /// and/or an external path string.
    fn resolve_path(&self, segs: &[String]) -> (Vec<usize>, Option<String>) {
        if segs.is_empty() {
            return (Vec::new(), None);
        }
        // Normalize the head segment.
        let mut segs = segs.to_vec();
        match segs[0].as_str() {
            "crate" => {
                segs[0] = self.caller.krate.clone();
            }
            "self" => {
                let mut abs = vec![self.caller.krate.clone()];
                abs.extend(self.caller.module.iter().cloned());
                abs.extend(segs[1..].iter().cloned());
                segs = abs;
            }
            "super" => {
                let mut module = self.caller.module.clone();
                module.pop();
                let mut abs = vec![self.caller.krate.clone()];
                abs.extend(module);
                abs.extend(segs[1..].iter().cloned());
                segs = abs;
            }
            "Self" => {
                if let Some(t) = &self.caller.self_type {
                    segs[0] = t.clone();
                } else {
                    return (Vec::new(), None);
                }
            }
            head => {
                // An imported name expands to its full path.
                if let Some(full) = self.imports.by_local.get(head) {
                    let mut abs = full.clone();
                    abs.extend(segs[1..].iter().cloned());
                    segs = abs;
                }
            }
        }
        if EXTERNAL_ROOTS.contains(&segs[0].as_str()) {
            return (Vec::new(), Some(segs.join("::")));
        }
        if segs.len() == 1 {
            return (self.resolve_bare(&segs[0]), None);
        }
        // Absolute workspace path? First segment names a visible crate.
        if let Some(krate) = self.graph.by_ident(&segs[0]) {
            if !self.is_visible(&krate.ident) {
                return (Vec::new(), None);
            }
            let name = segs.last().expect("non-empty");
            let mids = &segs[1..segs.len() - 1];
            let ids = self.candidates(name, |f| f.krate == krate.ident && suffix_ok(mids, f));
            return (ids, None);
        }
        // `Type::method` (or `module::f`) relative to the current crate
        // and its deps; also reachable via glob imports.
        let name = segs.last().expect("non-empty").clone();
        let mids = &segs[..segs.len() - 1];
        let ids = self.candidates(&name, |f| self.is_visible(&f.krate) && suffix_ok(mids, f));
        (ids, None)
    }

    /// Resolves a bare-name call `f(…)`: same module first, then
    /// glob-imported namespaces, then nothing — a bare name cannot reach
    /// another crate without an import, so we do not let it.
    fn resolve_bare(&self, name: &str) -> Vec<usize> {
        let same_module = self.candidates(name, |f| {
            f.krate == self.caller.krate && f.module == self.caller.module && f.self_type.is_none()
        });
        if !same_module.is_empty() {
            return same_module;
        }
        let mut out = Vec::new();
        for glob in &self.imports.globs {
            if glob.is_empty() || EXTERNAL_ROOTS.contains(&glob[0].as_str()) {
                continue;
            }
            let mut segs = glob.clone();
            segs.push(name.to_string());
            let (ids, _) = self.resolve_path(&segs);
            out.extend(ids);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Resolves a method call `.m(…)` to every visible method named `m`.
    fn resolve_method(&self, name: &str) -> Vec<usize> {
        self.table
            .methods_by_name
            .get(name)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| self.is_visible(&self.table.fns[id].krate))
                    .collect()
            })
            .unwrap_or_default()
    }

    fn candidates(&self, name: &str, pred: impl Fn(&FnSym) -> bool) -> Vec<usize> {
        self.table
            .by_name
            .get(name)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| pred(&self.table.fns[id]))
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// Whether the written middle segments are consistent with a symbol's
/// namespace: they must be a suffix of it (`hash::fast_map` matches a
/// fn in module `["hash"]`; `EventQueue::push` matches namespace
/// `["eventq", "EventQueue"]` through the crate-root re-export).
fn suffix_ok(mids: &[String], f: &FnSym) -> bool {
    let ns = f.namespace();
    mids.len() <= ns.len() && ns[ns.len() - mids.len()..] == *mids
}

/// Scans the body byte-range of one function for call sites.
fn extract_calls(src: &SourceFile, body: (usize, usize), r: &Resolver<'_>, out: &mut FnEdges) {
    // Significant-token indices covering the body.
    let in_body: Vec<usize> = src
        .sig
        .iter()
        .copied()
        .filter(|&i| src.tokens[i].start >= body.0 && src.tokens[i].end <= body.1)
        .collect();
    let text = |j: usize| -> Option<&str> { in_body.get(j).map(|&i| src.text(&src.tokens[i])) };
    let kind = |j: usize| -> Option<TokenKind> { in_body.get(j).map(|&i| src.tokens[i].kind) };

    let mut j = 0usize;
    while j < in_body.len() {
        if kind(j) != Some(TokenKind::Ident) {
            j += 1;
            continue;
        }
        let prev = j.checked_sub(1).and_then(text);
        // Method call: `.name(` or `.name::<…>(`.
        if prev == Some(".") {
            let name = text(j).expect("ident");
            let after = skip_turbofish(&in_body, src, j + 1);
            if text_at(&in_body, src, after) == Some("(") {
                for id in r.resolve_method(name) {
                    out.calls.insert(id);
                }
                if r.resolve_method(name).is_empty() {
                    out.unresolved_methods += 1;
                }
            }
            j += 1;
            continue;
        }
        // Path start: an ident not preceded by `::` or `.`.
        if prev == Some("::") {
            j += 1;
            continue;
        }
        let mut segs = vec![text(j).expect("ident").to_string()];
        let mut k = j + 1;
        while text_at(&in_body, src, k) == Some("::")
            && kind_at(&in_body, src, k + 1) == Some(TokenKind::Ident)
        {
            segs.push(text_at(&in_body, src, k + 1).expect("ident").to_string());
            k += 2;
        }
        // Macro invocation: `name!(…)` — skip the bang; the interior
        // tokens are scanned as the walk continues.
        if text_at(&in_body, src, k) == Some("!") {
            j = k + 1;
            continue;
        }
        let after = skip_turbofish(&in_body, src, k);
        if text_at(&in_body, src, after) == Some("(") {
            let (ids, external) = r.resolve_path(&segs);
            for id in ids {
                out.calls.insert(id);
            }
            if let Some(ext) = external {
                out.externals.insert(ext);
            }
        }
        j = k.max(j + 1);
    }
}

fn text_at<'a>(in_body: &[usize], src: &'a SourceFile, j: usize) -> Option<&'a str> {
    in_body.get(j).map(|&i| src.text(&src.tokens[i]))
}

fn kind_at(in_body: &[usize], src: &SourceFile, j: usize) -> Option<TokenKind> {
    in_body.get(j).map(|&i| src.tokens[i].kind)
}

/// If `j` sits at a turbofish `::<…>`, returns the index one past its
/// closing `>`; otherwise returns `j` unchanged.
fn skip_turbofish(in_body: &[usize], src: &SourceFile, j: usize) -> usize {
    if text_at(in_body, src, j) != Some("::") || text_at(in_body, src, j + 1) != Some("<") {
        return j;
    }
    let mut depth = 0i32;
    let mut k = j + 1;
    while k < in_body.len() {
        match text_at(in_body, src, k) {
            Some("<") => depth += 1,
            Some("<<") => depth += 2,
            Some(">") => depth -= 1,
            Some(">>") => depth -= 2,
            Some("(") | Some(";") | Some("{") => return j, // not a turbofish
            _ => {}
        }
        if depth <= 0 {
            return k + 1;
        }
        k += 1;
    }
    j
}

/// Renders the `--callgraph` dump: versioned, sorted, byte-stable.
///
/// Schema (version 1):
/// ```json
/// {
///   "version": 1,
///   "fns": [
///     {"path": "netsim::sim::Simulator::run", "file": "crates/netsim/src/sim.rs",
///      "line": 120, "crate": "netsim", "test": false,
///      "calls": ["netsim::eventq::EventQueue::pop"],
///      "externals": ["std::time::Instant::now"],
///      "taint": ["transitive-wall-clock"]}
///   ],
///   "summary": {"fns": 812, "edges": 2301}
/// }
/// ```
/// Functions sort by `(path, file, line)`; `calls` lists qualified
/// callee paths (deduplicated, sorted). `taint` lists the taint-rule
/// names the function's call graph reaches (from [`crate::taint`]) so
/// the sharding PR can diff reachability before/after a refactor.
pub fn render_json(table: &SymbolTable, graph: &CallGraph, taints: &[Vec<&'static str>]) -> String {
    let mut order: Vec<usize> = (0..table.fns.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = &table.fns[a];
        let fb = &table.fns[b];
        fa.qualified()
            .cmp(&fb.qualified())
            .then(fa.file.cmp(&fb.file))
            .then(fa.line.cmp(&fb.line))
    });
    let mut edges_total = 0usize;
    let mut out = String::from("{\n  \"version\": 1,\n  \"fns\": [");
    for (n, &id) in order.iter().enumerate() {
        let f = &table.fns[id];
        let e = &graph.edges[id];
        edges_total += e.calls.len();
        let mut calls: Vec<String> = e.calls.iter().map(|&c| table.fns[c].qualified()).collect();
        calls.sort();
        calls.dedup();
        let externals: Vec<String> = e.externals.iter().cloned().collect();
        let taint: Vec<String> = taints
            .get(id)
            .map(|t| t.iter().map(|s| s.to_string()).collect())
            .unwrap_or_default();
        if n > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": \"{}\", \"file\": \"{}\", \"line\": {}, \"crate\": \"{}\", \
             \"test\": {}, \"calls\": [{}], \"externals\": [{}], \"taint\": [{}]}}",
            crate::diag::json_escape(&f.qualified()),
            crate::diag::json_escape(&f.file),
            f.line,
            crate::diag::json_escape(&f.krate),
            f.in_test || f.test_like,
            json_str_list(&calls),
            json_str_list(&externals),
            json_str_list(&taint),
        ));
    }
    if !order.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"summary\": {{\"fns\": {}, \"edges\": {}}}\n}}\n",
        table.fns.len(),
        edges_total
    ));
    out
}

fn json_str_list(items: &[String]) -> String {
    items
        .iter()
        .map(|s| format!("\"{}\"", crate::diag::json_escape(s)))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser;
    use crate::symbols::CrateInfo;

    fn mini_workspace() -> (CrateGraph, Vec<(SourceFile, ParsedFile)>) {
        let graph = CrateGraph {
            crates: vec![
                CrateInfo::test("app", "crates/app", &["util"]),
                CrateInfo::test("util", "crates/util", &[]),
                CrateInfo::test("other", "crates/other", &[]),
            ],
        };
        let files = vec![
            analyzed(
                "crates/app/src/lib.rs",
                "use util::clockio;\nuse util::timer::Timer;\n\
                 pub fn run() { helper(); clockio::read_clock(); Timer::start(); }\n\
                 fn helper() { let t = std::time::Instant::now(); }\n\
                 pub fn touch(t: &mut Timer) { t.tick(); }\n",
            ),
            analyzed(
                "crates/util/src/clockio.rs",
                "pub fn read_clock() -> u64 { 0 }\n",
            ),
            analyzed(
                "crates/util/src/timer.rs",
                "pub struct Timer;\nimpl Timer {\n  pub fn start() {}\n  pub fn tick(&mut self) {}\n}\n",
            ),
            analyzed(
                "crates/other/src/lib.rs",
                "pub struct Clock;\nimpl Clock {\n  pub fn tick(&mut self) {}\n}\n",
            ),
        ];
        (graph, files)
    }

    impl CrateInfo {
        fn test(ident: &str, dir: &str, deps: &[&str]) -> CrateInfo {
            CrateInfo {
                ident: ident.into(),
                dir: dir.into(),
                deps: deps.iter().map(|s| s.to_string()).collect(),
                dev_deps: vec![],
            }
        }
    }

    fn analyzed(path: &str, src: &str) -> (SourceFile, ParsedFile) {
        let f = SourceFile::analyze(path, src.to_string());
        let p = parser::parse(&f);
        (f, p)
    }

    fn qualified_calls(table: &SymbolTable, g: &CallGraph, caller: &str) -> Vec<String> {
        let id = table
            .fns
            .iter()
            .find(|f| f.qualified() == caller)
            .unwrap_or_else(|| panic!("no fn {caller}"))
            .id;
        g.edges[id]
            .calls
            .iter()
            .map(|&c| table.fns[c].qualified())
            .collect()
    }

    #[test]
    fn resolves_bare_imported_assoc_and_method_calls() {
        let (graph, files) = mini_workspace();
        let table = SymbolTable::build(&graph, &files);
        let g = build(&graph, &table, &files);
        let calls = qualified_calls(&table, &g, "app::run");
        assert!(calls.contains(&"app::helper".to_string()), "{calls:?}");
        assert!(
            calls.contains(&"util::clockio::read_clock".to_string()),
            "{calls:?}"
        );
        assert!(
            calls.contains(&"util::timer::Timer::start".to_string()),
            "{calls:?}"
        );
    }

    #[test]
    fn method_calls_are_dependency_bounded() {
        let (graph, files) = mini_workspace();
        let table = SymbolTable::build(&graph, &files);
        let g = build(&graph, &table, &files);
        let calls = qualified_calls(&table, &g, "app::touch");
        // `.tick()` resolves to util's Timer::tick (a dependency) but
        // NOT to other's Clock::tick — app does not link `other`.
        assert!(
            calls.contains(&"util::timer::Timer::tick".to_string()),
            "{calls:?}"
        );
        assert!(!calls.iter().any(|c| c.starts_with("other::")), "{calls:?}");
    }

    #[test]
    fn external_std_calls_are_recorded() {
        let (graph, files) = mini_workspace();
        let table = SymbolTable::build(&graph, &files);
        let g = build(&graph, &table, &files);
        let id = table
            .fns
            .iter()
            .find(|f| f.qualified() == "app::helper")
            .unwrap()
            .id;
        assert!(g.edges[id].externals.contains("std::time::Instant::now"));
    }

    #[test]
    fn callers_reverse_index_is_consistent() {
        let (graph, files) = mini_workspace();
        let table = SymbolTable::build(&graph, &files);
        let g = build(&graph, &table, &files);
        for (id, e) in g.edges.iter().enumerate() {
            for &callee in &e.calls {
                assert!(g.callers[callee].contains(&id));
            }
        }
    }

    #[test]
    fn json_dump_is_versioned_sorted_and_stable() {
        let (graph, files) = mini_workspace();
        let table = SymbolTable::build(&graph, &files);
        let g = build(&graph, &table, &files);
        let taints = vec![Vec::new(); table.fns.len()];
        let a = render_json(&table, &g, &taints);
        assert!(a.contains("\"version\": 1"));
        assert!(a.contains("\"path\": \"app::run\""));
        assert_eq!(a, render_json(&table, &g, &taints));
        // Sorted: app::helper precedes app::run precedes util::…
        let helper = a.find("app::helper").unwrap();
        let run = a.find("\"app::run\"").unwrap();
        assert!(helper < run);
    }
}
