//! A recursive-descent *item* parser over the lossless token stream.
//!
//! The lexical rules (TL001–TL008) judge tokens in place; the semantic
//! rules (TL2xx) need to know *which function* a token lives in and
//! *what that function calls*. This parser extracts exactly that — and
//! nothing more: `fn`/`impl`/`trait`/`mod`/`use` items with byte-span
//! fidelity, function bodies kept as opaque token ranges for the call
//! extractor ([`crate::callgraph`]) to scan. No expression grammar, no
//! type checker — the analysis stays std-only and fast, and every span
//! it reports is checkable against the file bytes (the round-trip test
//! in `tests/roundtrip.rs` holds the parser to that).
//!
//! Parsing is total: like the lexer, it never fails. Token soup that
//! matches no item form is skipped, so a macro-heavy or even invalid
//! file degrades to "no items found", never to a crash or a misparse of
//! the surrounding items.

use crate::context::SourceFile;
use crate::lexer::TokenKind;

/// One parsed `fn` item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Inline `mod` path within the file (file-level module path comes
    /// from the file's location and is added by the symbol table).
    pub module: Vec<String>,
    /// Enclosing `impl Type`/`trait Type` name, when inside one.
    pub self_type: Option<String>,
    /// Whether the item carries any `pub` visibility.
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Byte span of the whole item, from the `fn` keyword (qualifiers
    /// like `const`/`async` included when present) to the closing brace
    /// or semicolon.
    pub span: (usize, usize),
    /// Byte span of the `{ … }` body; `None` for bodiless declarations
    /// (trait method signatures, extern decls).
    pub body: Option<(usize, usize)>,
    /// Whether the `fn` keyword falls inside a `#[cfg(test)]`/`#[test]`
    /// region of the file.
    pub in_test: bool,
}

/// One name binding produced by a `use` declaration.
#[derive(Clone, Debug)]
pub struct UseItem {
    /// The name bound in scope (the alias, for `as` renames; the final
    /// path segment otherwise; the *prefix's* final segment for
    /// `use a::b::{self}`).
    pub local: String,
    /// Full path segments, e.g. `["std", "time", "Instant"]`. For glob
    /// imports this is the prefix.
    pub path: Vec<String>,
    /// `use prefix::*;`
    pub glob: bool,
}

/// Everything the item parser extracts from one file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// Every `fn` in the file, in source order.
    pub fns: Vec<FnItem>,
    /// Every `use` binding in the file (module-scoped `use` is treated
    /// as file-scoped: an over-approximation in the conservative
    /// direction for call resolution).
    pub uses: Vec<UseItem>,
    /// Byte spans of the file's *top-level* items, in source order —
    /// non-overlapping and strictly increasing, which the round-trip
    /// test verifies against the raw bytes.
    pub top_spans: Vec<(usize, usize)>,
}

/// Keywords that can precede `fn` without changing what we record.
const FN_QUALIFIERS: &[&str] = &["const", "async", "unsafe", "extern", "default"];

struct Parser<'a> {
    file: &'a SourceFile,
    /// `sig[k]` index of the matching close brace for each open brace.
    brace_match: Vec<Option<usize>>,
    out: ParsedFile,
}

/// Parses the items of one analyzed file.
pub fn parse(file: &SourceFile) -> ParsedFile {
    let mut p = Parser {
        file,
        brace_match: match_braces(file),
        out: ParsedFile::default(),
    };
    let end = file.sig.len();
    let mut module = Vec::new();
    p.parse_items(0, end, &mut module, None, true);
    p.out
}

/// Precomputes `{`/`}` matching over significant tokens (token trees are
/// always balanced in valid Rust; unbalanced input degrades to `None`).
fn match_braces(file: &SourceFile) -> Vec<Option<usize>> {
    let mut out = vec![None; file.sig.len()];
    let mut stack = Vec::new();
    for k in 0..file.sig.len() {
        match sig_text(file, k) {
            Some("{") => stack.push(k),
            Some("}") => {
                if let Some(open) = stack.pop() {
                    out[open] = Some(k);
                }
            }
            _ => {}
        }
    }
    out
}

fn sig_text(file: &SourceFile, k: usize) -> Option<&str> {
    file.sig.get(k).map(|&i| file.text(&file.tokens[i]))
}

fn sig_kind(file: &SourceFile, k: usize) -> Option<TokenKind> {
    file.sig.get(k).map(|&i| file.tokens[i].kind)
}

fn sig_start(file: &SourceFile, k: usize) -> usize {
    file.tokens[file.sig[k]].start
}

fn sig_end(file: &SourceFile, k: usize) -> usize {
    file.tokens[file.sig[k]].end
}

fn sig_line(file: &SourceFile, k: usize) -> u32 {
    file.tokens[file.sig[k]].line
}

impl Parser<'_> {
    fn text(&self, k: usize) -> Option<&str> {
        sig_text(self.file, k)
    }

    /// Parses the items in `sig[start..end)`, appending to `self.out`.
    /// `top` marks file top level (those item spans are recorded).
    fn parse_items(
        &mut self,
        start: usize,
        end: usize,
        module: &mut Vec<String>,
        self_type: Option<&str>,
        top: bool,
    ) {
        let mut k = start;
        while k < end {
            let item_start = k;
            let next = self.parse_one(k, end, module, self_type);
            debug_assert!(next > k, "item parser must make progress");
            if top && next > item_start + 1 {
                // Only multi-token advances are "items" worth recording;
                // single skipped tokens (stray semicolons, macro debris)
                // stay in the gaps.
                let s = sig_start(self.file, item_start);
                let e = sig_end(self.file, next - 1);
                self.out.top_spans.push((s, e));
            }
            k = next;
        }
    }

    /// Parses one item (or skips one token) at `k`; returns the index
    /// one past it.
    fn parse_one(
        &mut self,
        mut k: usize,
        end: usize,
        module: &mut Vec<String>,
        self_type: Option<&str>,
    ) -> usize {
        // Outer/inner attributes: skip the whole `#[…]` / `#![…]` group.
        if self.text(k) == Some("#") {
            let mut j = k + 1;
            if self.text(j) == Some("!") {
                j += 1;
            }
            if self.text(j) == Some("[") {
                return self.skip_brackets(j, end);
            }
            return k + 1;
        }
        let mut is_pub = false;
        if self.text(k) == Some("pub") {
            is_pub = true;
            k += 1;
            // `pub(crate)`, `pub(in path)`, `pub(super)`.
            if self.text(k) == Some("(") {
                k = self.skip_parens(k, end);
            }
        }
        // Qualifier keywords before `fn` (const fn, async fn, unsafe fn,
        // extern "C" fn…). `const` alone may also start a const item —
        // only treat it as a qualifier when a `fn` actually follows.
        let mut q = k;
        while q < end && self.text(q).is_some_and(|t| FN_QUALIFIERS.contains(&t)) {
            q += 1;
            if sig_kind(self.file, q) == Some(TokenKind::Str) {
                q += 1; // the ABI string of `extern "C"`
            }
        }
        if q < end && self.text(q) == Some("fn") {
            return self.parse_fn(k, q, end, module, self_type, is_pub);
        }
        match self.text(k) {
            Some("fn") => self.parse_fn(k, k, end, module, self_type, is_pub),
            Some("mod") => self.parse_mod(k, end, module, self_type),
            Some("impl") => self.parse_impl_or_trait(k, end, module, false),
            Some("trait") => self.parse_impl_or_trait(k, end, module, true),
            Some("use") => self.parse_use(k, end),
            Some("macro_rules") => {
                // macro_rules! name { … } — token trees are balanced.
                let mut j = k;
                while j < end && self.text(j) != Some("{") {
                    j += 1;
                }
                self.skip_braces(j, end)
            }
            Some(_) => self.skip_item(k, end),
            None => k + 1,
        }
    }

    /// Skips a generic item (struct/enum/const/static/type/extern crate/
    /// stray expression) to its `;`, or through its first brace block at
    /// nesting level zero, whichever comes first.
    fn skip_item(&mut self, k: usize, end: usize) -> usize {
        let mut j = k;
        while j < end {
            match self.text(j) {
                Some(";") => return j + 1,
                Some("{") => return self.skip_braces(j, end),
                Some("(") => j = self.skip_parens(j, end),
                Some("[") => j = self.skip_brackets(j, end),
                _ => j += 1,
            }
        }
        end
    }

    /// `k` at `{`: returns the index one past the matching `}`.
    fn skip_braces(&mut self, k: usize, end: usize) -> usize {
        match self.brace_match.get(k).copied().flatten() {
            Some(close) => close + 1,
            None => end,
        }
    }

    /// `k` at `(`: index one past the matching `)`.
    fn skip_parens(&mut self, k: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = k;
        while j < end {
            match self.text(j) {
                Some("(") => depth += 1,
                Some(")") => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// `k` at `[`: index one past the matching `]`.
    fn skip_brackets(&mut self, k: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = k;
        while j < end {
            match self.text(j) {
                Some("[") => depth += 1,
                Some("]") => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// `k` at `<`: index one past the matching close. `>>` closes two
    /// levels (nested generics lex it as one token); `->`/`=>` contain
    /// `>` but never appear inside a generic argument list at our level
    /// of fidelity, so they are counted as closers only by their `>`
    /// content — excluded explicitly instead.
    fn skip_angles(&mut self, k: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = k;
        while j < end {
            match self.text(j) {
                Some("<") | Some("<<") => {
                    depth += if self.text(j) == Some("<<") { 2 } else { 1 };
                }
                Some(">") => depth -= 1,
                Some(">>") => depth -= 2,
                Some(">=") => depth -= 1,
                Some(">>=") => depth -= 2,
                Some(";") | Some("{") => return j, // malformed; bail
                _ => {}
            }
            if depth <= 0 {
                return j + 1;
            }
            j += 1;
        }
        end
    }

    /// Parses `fn name<…>(…) -> … where … { body }` with `start` at the
    /// first qualifier token and `fn_k` at the `fn` keyword.
    fn parse_fn(
        &mut self,
        start: usize,
        fn_k: usize,
        end: usize,
        module: &[String],
        self_type: Option<&str>,
        is_pub: bool,
    ) -> usize {
        let mut k = fn_k + 1;
        let Some(name) = self
            .text(k)
            .filter(|_| sig_kind(self.file, k) == Some(TokenKind::Ident))
            .map(str::to_string)
        else {
            return fn_k + 1;
        };
        k += 1;
        if self.text(k) == Some("<") {
            k = self.skip_angles(k, end);
        }
        if self.text(k) == Some("(") {
            k = self.skip_parens(k, end);
        }
        // Return type / where clause: scan to the body `{` or a `;` at
        // paren/bracket nesting zero.
        let mut body = None;
        let mut item_end_k = k;
        let mut j = k;
        while j < end {
            match self.text(j) {
                Some("(") => {
                    j = self.skip_parens(j, end);
                    continue;
                }
                Some("[") => {
                    j = self.skip_brackets(j, end);
                    continue;
                }
                Some(";") => {
                    item_end_k = j;
                    j += 1;
                    break;
                }
                Some("{") => {
                    let past = self.skip_braces(j, end);
                    body = Some((sig_start(self.file, j), sig_end(self.file, past - 1)));
                    item_end_k = past - 1;
                    j = past;
                    break;
                }
                _ => j += 1,
            }
        }
        let span_start = sig_start(self.file, start);
        let span_end = sig_end(self.file, item_end_k.min(end.saturating_sub(1)));
        self.out.fns.push(FnItem {
            name,
            module: module.to_vec(),
            self_type: self_type.map(str::to_string),
            is_pub,
            line: sig_line(self.file, fn_k),
            span: (span_start, span_end),
            body,
            in_test: self.file.in_test_region(sig_start(self.file, fn_k)),
        });
        j.max(fn_k + 1)
    }

    /// `mod name;` (file module — nothing to descend into here) or
    /// `mod name { items }` (descend with the module pushed).
    fn parse_mod(
        &mut self,
        k: usize,
        end: usize,
        module: &mut Vec<String>,
        self_type: Option<&str>,
    ) -> usize {
        let name = self
            .text(k + 1)
            .filter(|_| sig_kind(self.file, k + 1) == Some(TokenKind::Ident))
            .map(str::to_string);
        let mut j = k + 1;
        while j < end {
            match self.text(j) {
                Some(";") => return j + 1,
                Some("{") => {
                    let past = self.skip_braces(j, end);
                    if let Some(name) = name {
                        module.push(name);
                        self.parse_items(j + 1, past.saturating_sub(1), module, self_type, false);
                        module.pop();
                    }
                    return past;
                }
                _ => j += 1,
            }
        }
        end
    }

    /// `impl<…> Type { … }`, `impl<…> Trait for Type { … }`, or
    /// `trait Name { … }` — descends with the target type (or trait)
    /// name as the contained fns' `self_type`.
    fn parse_impl_or_trait(
        &mut self,
        k: usize,
        end: usize,
        module: &mut Vec<String>,
        is_trait: bool,
    ) -> usize {
        let mut j = k + 1;
        if self.text(j) == Some("<") {
            j = self.skip_angles(j, end);
        }
        // Collect the last plain identifier seen before the body (or
        // before `for`, after which we start over: the impl target is
        // the type *after* `for`). Generic arguments are skipped whole
        // so `impl Display for Foo<T>` names `Foo`, not `T`.
        let mut last_ident: Option<String> = None;
        while j < end {
            match self.text(j) {
                Some("{") => break,
                Some(";") => return j + 1, // e.g. `impl Foo;` (invalid) or trait alias
                Some("for") => {
                    last_ident = None;
                    j += 1;
                }
                Some("<") => j = self.skip_angles(j, end),
                Some("(") => j = self.skip_parens(j, end),
                Some("where") => {
                    // Bounds may mention other types; stop collecting.
                    while j < end && self.text(j) != Some("{") {
                        j += 1;
                    }
                    break;
                }
                Some(t) if sig_kind(self.file, j) == Some(TokenKind::Ident) => {
                    if !matches!(t, "dyn" | "mut" | "ref") {
                        last_ident = Some(t.to_string());
                    }
                    j += 1;
                }
                _ => j += 1,
            }
        }
        if j >= end || self.text(j) != Some("{") {
            return j.max(k + 1);
        }
        let past = self.skip_braces(j, end);
        let _ = is_trait;
        let st = last_ident;
        self.parse_items(j + 1, past.saturating_sub(1), module, st.as_deref(), false);
        past
    }

    /// `use tree;` — flattens the tree into [`UseItem`]s.
    fn parse_use(&mut self, k: usize, end: usize) -> usize {
        // Find the terminating `;` at brace nesting zero.
        let mut depth = 0i32;
        let mut stop = k + 1;
        while stop < end {
            match self.text(stop) {
                Some("{") => depth += 1,
                Some("}") => depth -= 1,
                Some(";") if depth == 0 => break,
                _ => {}
            }
            stop += 1;
        }
        let prefix = Vec::new();
        self.parse_use_tree(k + 1, stop, &prefix);
        if stop < end {
            stop + 1
        } else {
            end
        }
    }

    /// Parses one use-tree in `sig[start..stop)` with `prefix` segments
    /// accumulated so far.
    fn parse_use_tree(&mut self, start: usize, stop: usize, prefix: &[String]) {
        let mut segs: Vec<String> = Vec::new();
        let mut j = start;
        while j < stop {
            match self.text(j) {
                Some("::") | Some(",") => j += 1,
                Some("*") => {
                    let mut path = prefix.to_vec();
                    path.extend(segs.iter().cloned());
                    self.out.uses.push(UseItem {
                        local: String::new(),
                        path,
                        glob: true,
                    });
                    return;
                }
                Some("{") => {
                    // Nested group: split on top-level commas.
                    let close = self.find_close_brace(j, stop);
                    let mut new_prefix: Vec<String> = prefix.to_vec();
                    new_prefix.extend(segs.iter().cloned());
                    let mut part_start = j + 1;
                    let mut depth = 0i32;
                    let mut i = j + 1;
                    while i < close {
                        match self.text(i) {
                            Some("{") => depth += 1,
                            Some("}") => depth -= 1,
                            Some(",") if depth == 0 => {
                                self.parse_use_tree(part_start, i, &new_prefix);
                                part_start = i + 1;
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                    if part_start < close {
                        self.parse_use_tree(part_start, close, &new_prefix);
                    }
                    return;
                }
                Some("as") => {
                    // `path as alias`
                    if let Some(alias) = self.text(j + 1) {
                        let mut path = prefix.to_vec();
                        path.extend(segs.iter().cloned());
                        self.out.uses.push(UseItem {
                            local: alias.to_string(),
                            path,
                            glob: false,
                        });
                    }
                    return;
                }
                Some("self") => {
                    // `use a::b::{self}` binds `b`.
                    let mut path = prefix.to_vec();
                    path.extend(segs.iter().cloned());
                    if let Some(last) = path.last().cloned() {
                        self.out.uses.push(UseItem {
                            local: last,
                            path,
                            glob: false,
                        });
                    }
                    return;
                }
                Some(t) if sig_kind(self.file, j) == Some(TokenKind::Ident) => {
                    segs.push(t.to_string());
                    j += 1;
                }
                _ => j += 1,
            }
        }
        if let Some(last) = segs.last().cloned() {
            let mut path = prefix.to_vec();
            path.extend(segs);
            self.out.uses.push(UseItem {
                local: last,
                path,
                glob: false,
            });
        }
    }

    /// Finds the matching `}` for the `{` at `j`, bounded by `stop`.
    fn find_close_brace(&self, j: usize, stop: usize) -> usize {
        let mut depth = 0i32;
        let mut i = j;
        while i < stop {
            match sig_text(self.file, i) {
                Some("{") => depth += 1,
                Some("}") => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        stop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_src(src: &str) -> ParsedFile {
        let file = SourceFile::analyze("crates/x/src/lib.rs", src.to_string());
        parse(&file)
    }

    #[test]
    fn extracts_free_and_impl_fns_with_modules() {
        let p = parse_src(
            "pub fn top() { inner(); }\n\
             mod alpha {\n  pub fn in_alpha() {}\n  mod beta { fn in_beta() {} }\n}\n\
             struct Engine;\n\
             impl Engine {\n  pub fn run(&self) -> u32 { 0 }\n}\n\
             impl std::fmt::Display for Engine {\n  fn fmt(&self) {}\n}\n\
             trait Tick {\n  fn tick(&mut self) { self.run(); }\n  fn must(&self);\n}\n",
        );
        let names: Vec<(String, Vec<String>, Option<String>)> = p
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.module.clone(), f.self_type.clone()))
            .collect();
        assert_eq!(names.len(), 7, "{names:?}");
        assert_eq!(names[0], ("top".into(), vec![], None));
        assert_eq!(names[1], ("in_alpha".into(), vec!["alpha".into()], None));
        assert_eq!(
            names[2],
            ("in_beta".into(), vec!["alpha".into(), "beta".into()], None)
        );
        assert_eq!(names[3], ("run".into(), vec![], Some("Engine".into())));
        assert_eq!(names[4], ("fmt".into(), vec![], Some("Engine".into())));
        assert_eq!(names[5], ("tick".into(), vec![], Some("Tick".into())));
        assert_eq!(names[6], ("must".into(), vec![], Some("Tick".into())));
        assert!(p.fns[0].is_pub && !p.fns[2].is_pub);
        // Bodiless trait method has no body span.
        assert!(p.fns[6].body.is_none() && p.fns[5].body.is_some());
    }

    #[test]
    fn fn_spans_and_bodies_match_source_bytes() {
        let src = "fn a() { let x = 1; }\n\npub fn b<T: Clone>(t: T) -> T where T: Copy { t }\n";
        let p = parse_src(src);
        assert_eq!(
            &src[p.fns[0].span.0..p.fns[0].span.1],
            "fn a() { let x = 1; }"
        );
        let body = p.fns[0].body.unwrap();
        assert_eq!(&src[body.0..body.1], "{ let x = 1; }");
        assert_eq!(
            &src[p.fns[1].body.unwrap().0..p.fns[1].body.unwrap().1],
            "{ t }"
        );
    }

    #[test]
    fn qualifier_fns_and_generics_parse() {
        let p = parse_src(
            "pub const fn k() -> u64 { 1 }\n\
             pub async fn go() {}\n\
             pub unsafe fn danger() {}\n\
             pub extern \"C\" fn ffi() {}\n\
             fn generic<K: Ord, V>(m: BTreeMap<K, Vec<V>>) -> Option<V> { None }\n",
        );
        let names: Vec<_> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["k", "go", "danger", "ffi", "generic"]);
    }

    #[test]
    fn use_trees_flatten_with_aliases_globs_and_self() {
        let p = parse_src(
            "use std::time::Instant;\n\
             use std::collections::{HashMap, HashSet as Unordered};\n\
             use netsim::hash::*;\n\
             use trim_core::{trim::{self, TrimCc}, kmodel};\n",
        );
        let find = |local: &str| p.uses.iter().find(|u| u.local == local).unwrap();
        assert_eq!(find("Instant").path, ["std", "time", "Instant"]);
        assert_eq!(find("HashMap").path, ["std", "collections", "HashMap"]);
        assert_eq!(find("Unordered").path, ["std", "collections", "HashSet"]);
        assert_eq!(find("trim").path, ["trim_core", "trim"]);
        assert_eq!(find("TrimCc").path, ["trim_core", "trim", "TrimCc"]);
        assert_eq!(find("kmodel").path, ["trim_core", "kmodel"]);
        let glob = p.uses.iter().find(|u| u.glob).unwrap();
        assert_eq!(glob.path, ["netsim", "hash"]);
    }

    #[test]
    fn test_region_flag_carries_through() {
        let p = parse_src("fn live() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() {}\n}\n");
        assert!(!p.fns[0].in_test);
        assert!(p.fns[1].in_test);
    }

    #[test]
    fn top_spans_are_sorted_and_disjoint() {
        let src = "use a::b;\n\nfn f() { g(); }\n\n#[derive(Debug)]\nstruct S { x: u32 }\n\nimpl S { fn m(&self) {} }\n";
        let p = parse_src(src);
        assert!(p.top_spans.len() >= 4, "{:?}", p.top_spans);
        for w in p.top_spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {:?}", w);
        }
        assert!(p.top_spans.iter().all(|&(s, e)| s < e && e <= src.len()));
    }

    #[test]
    fn const_item_with_struct_literal_does_not_derail() {
        let p = parse_src(
            "const DEFAULT: Config = Config { probe: 2, scale: 1 };\n\
             fn after() {}\n",
        );
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "after");
    }

    #[test]
    fn macro_rules_bodies_are_opaque() {
        let p =
            parse_src("macro_rules! make {\n  ($n:ident) => { fn $n() {} };\n}\nfn real() {}\n");
        // The `fn $n` template inside the macro body must not be
        // recorded as an item; only `real` is.
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "real");
    }

    #[test]
    fn nested_generics_with_shift_tokens() {
        let p = parse_src("fn f(x: Vec<Vec<u8>>) -> BTreeMap<u32, Vec<Vec<u64>>> { todo() }\n");
        assert_eq!(p.fns.len(), 1);
        assert!(p.fns[0].body.is_some());
    }

    #[test]
    fn parser_is_total_on_token_soup() {
        for src in [
            "} } { ) fn ( impl ::",
            "fn",
            "impl for {}",
            "use ;",
            "mod {}",
            "#[cfg(",
        ] {
            let _ = parse_src(src); // must not panic
        }
    }
}
