//! The workspace symbol table: which crates exist, what they may call
//! (the Cargo dependency graph), and every function the parser found —
//! indexed so the call-graph builder can resolve call sites without a
//! type checker.
//!
//! Crate metadata comes from a minimal scan of each `Cargo.toml`
//! (`[package] name`, `[dependencies]`, `[dev-dependencies]`) — the
//! same hand-rolled-subset philosophy as `Lint.toml`: the workspace
//! builds offline, so no `toml` crate. Dependency information is what
//! keeps the conservative call graph *honest* rather than hopeless: a
//! method call in `netsim` can only resolve into crates `netsim`
//! actually links against, so name collisions with, say, harness
//! methods cannot fabricate taint paths the build could never take.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use crate::context::SourceFile;
use crate::parser::ParsedFile;

/// One workspace crate.
#[derive(Clone, Debug)]
pub struct CrateInfo {
    /// The crate's Rust identifier (`package.name` with `-` → `_`).
    pub ident: String,
    /// Workspace-relative directory (`crates/netsim`; empty string for
    /// the root package).
    pub dir: String,
    /// Direct dependencies, as crate identifiers (workspace members
    /// only; external path shims like `rand` resolve too since they are
    /// members).
    pub deps: Vec<String>,
    /// Direct dev-dependencies (visible to the crate's tests/benches).
    pub dev_deps: Vec<String>,
}

/// The crate set and dependency closure.
#[derive(Clone, Debug, Default)]
pub struct CrateGraph {
    /// Crates sorted by directory, longest first (so prefix matching a
    /// file path finds the most specific crate).
    pub crates: Vec<CrateInfo>,
}

impl CrateGraph {
    /// Loads every `Cargo.toml` under `root` (root package plus
    /// `crates/*/` and `crates/compat/*/`).
    pub fn load(root: &Path) -> Result<CrateGraph, String> {
        let mut crates = Vec::new();
        if let Some(info) = parse_cargo_toml(root, root.join("Cargo.toml"), "") {
            crates.push(info);
        }
        for dir in ["crates", "crates/compat"] {
            let Ok(rd) = fs::read_dir(root.join(dir)) else {
                continue;
            };
            let mut entries: Vec<_> = rd.flatten().map(|e| e.path()).collect();
            entries.sort();
            for p in entries {
                if !p.is_dir() {
                    continue;
                }
                let manifest = p.join("Cargo.toml");
                if !manifest.is_file() {
                    continue;
                }
                let name = p.file_name().and_then(|n| n.to_str()).unwrap_or_default();
                if name == "compat" {
                    continue; // recursed into explicitly above
                }
                let rel = format!("{dir}/{name}");
                if let Some(info) = parse_cargo_toml(root, manifest, &rel) {
                    crates.push(info);
                }
            }
        }
        // Longest directory first so `crate_of` prefix matching is most
        // specific (the root package's empty dir matches everything).
        crates.sort_by(|a, b| b.dir.len().cmp(&a.dir.len()).then(a.dir.cmp(&b.dir)));
        Ok(CrateGraph { crates })
    }

    /// The crate a workspace-relative file belongs to.
    pub fn crate_of(&self, rel_path: &str) -> Option<&CrateInfo> {
        self.crates.iter().find(|c| {
            c.dir.is_empty() || rel_path == c.dir || rel_path.starts_with(&format!("{}/", c.dir))
        })
    }

    /// Looks a crate up by identifier.
    pub fn by_ident(&self, ident: &str) -> Option<&CrateInfo> {
        self.crates.iter().find(|c| c.ident == ident)
    }

    /// The set of crate idents visible to code in `krate`: itself plus
    /// its transitive dependencies (dev-dependencies of `krate` itself
    /// included when `dev` is set — they are visible to its tests).
    pub fn visible_from(&self, krate: &str, dev: bool) -> Vec<String> {
        let mut seen: Vec<String> = vec![krate.to_string()];
        let mut queue: Vec<String> = vec![krate.to_string()];
        if dev {
            if let Some(c) = self.by_ident(krate) {
                for d in &c.dev_deps {
                    if !seen.contains(d) {
                        seen.push(d.clone());
                        queue.push(d.clone());
                    }
                }
            }
        }
        while let Some(k) = queue.pop() {
            if let Some(c) = self.by_ident(&k) {
                for d in &c.deps {
                    if !seen.contains(d) {
                        seen.push(d.clone());
                        queue.push(d.clone());
                    }
                }
            }
        }
        seen.sort();
        seen
    }
}

/// Parses the subset of `Cargo.toml` the symbol table needs. Returns
/// `None` for manifests with no `[package]` section (pure workspace
/// manifests are represented by whatever `[package]` follows, if any).
fn parse_cargo_toml(_root: &Path, path: impl AsRef<Path>, dir: &str) -> Option<CrateInfo> {
    let text = fs::read_to_string(path.as_ref()).ok()?;
    let mut section = String::new();
    let mut name: Option<String> = None;
    let mut deps = Vec::new();
    let mut dev_deps = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(s) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = s.trim().to_string();
            continue;
        }
        match section.as_str() {
            "package" => {
                if let Some(v) = line.strip_prefix("name") {
                    if let Some(v) = v.trim().strip_prefix('=') {
                        name = Some(v.trim().trim_matches('"').replace('-', "_"));
                    }
                }
            }
            "dependencies" | "dev-dependencies" => {
                // `foo.workspace = true`, `foo = { path = ... }`,
                // `foo = "1"` all declare dependency `foo`.
                let key = line
                    .split(['=', '.'])
                    .next()
                    .unwrap_or_default()
                    .trim()
                    .trim_matches('"');
                if key.is_empty() {
                    continue;
                }
                let ident = key.replace('-', "_");
                if section == "dependencies" {
                    deps.push(ident);
                } else {
                    dev_deps.push(ident);
                }
            }
            _ => {}
        }
    }
    Some(CrateInfo {
        ident: name?,
        dir: dir.to_string(),
        deps,
        dev_deps,
    })
}

/// One function, fully located.
#[derive(Clone, Debug)]
pub struct FnSym {
    /// Index into [`SymbolTable::fns`].
    pub id: usize,
    /// Owning crate identifier.
    pub krate: String,
    /// Module path: file-derived segments plus inline `mod`s.
    pub module: Vec<String>,
    /// Enclosing `impl`/`trait` type name, when any.
    pub self_type: Option<String>,
    /// Function name.
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Byte span of the whole item in its file.
    pub span: (usize, usize),
    /// Byte span of the body, when present.
    pub body: Option<(usize, usize)>,
    /// `pub` in any form.
    pub is_pub: bool,
    /// Inside a `#[cfg(test)]`/`#[test]` region.
    pub in_test: bool,
    /// Lives in a test-like file (`tests/`, `benches/`, `examples/`).
    pub test_like: bool,
}

impl FnSym {
    /// The human/JSON-facing qualified path:
    /// `crate::module::…::[Type::]name`.
    pub fn qualified(&self) -> String {
        let mut parts: Vec<&str> = vec![self.krate.as_str()];
        parts.extend(self.module.iter().map(String::as_str));
        if let Some(t) = &self.self_type {
            parts.push(t);
        }
        parts.push(&self.name);
        parts.join("::")
    }

    /// Module path with the self type appended — the namespace the
    /// function's name lives in, used for path-suffix matching.
    pub fn namespace(&self) -> Vec<String> {
        let mut ns = self.module.clone();
        if let Some(t) = &self.self_type {
            ns.push(t.clone());
        }
        ns
    }
}

/// All functions in the workspace, with the indexes call resolution
/// needs. Every index is a `BTreeMap` — iteration order, and therefore
/// everything derived from it, is deterministic.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Every function, in deterministic (file, offset) order.
    pub fns: Vec<FnSym>,
    /// Function ids by simple name.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Function ids of inherent/trait methods by name (`self_type`
    /// present).
    pub methods_by_name: BTreeMap<String, Vec<usize>>,
}

impl SymbolTable {
    /// Builds the table from parsed files. `files` must be sorted by
    /// path (the workspace walker guarantees this).
    pub fn build(graph: &CrateGraph, files: &[(SourceFile, ParsedFile)]) -> SymbolTable {
        let mut table = SymbolTable::default();
        for (src, parsed) in files {
            let Some(krate) = graph.crate_of(&src.rel_path) else {
                continue;
            };
            let file_mods = module_path_of(&src.rel_path, &krate.dir);
            let test_like =
                crate::context::classify_role(&src.rel_path) == crate::context::FileRole::TestLike;
            for f in &parsed.fns {
                let mut module = file_mods.clone();
                module.extend(f.module.iter().cloned());
                let id = table.fns.len();
                table.fns.push(FnSym {
                    id,
                    krate: krate.ident.clone(),
                    module,
                    self_type: f.self_type.clone(),
                    name: f.name.clone(),
                    file: src.rel_path.clone(),
                    line: f.line,
                    span: f.span,
                    body: f.body,
                    is_pub: f.is_pub,
                    in_test: f.in_test,
                    test_like,
                });
                table.by_name.entry(f.name.clone()).or_default().push(id);
                if f.self_type.is_some() {
                    table
                        .methods_by_name
                        .entry(f.name.clone())
                        .or_default()
                        .push(id);
                }
            }
        }
        table
    }
}

/// Derives the file-level module path of a source file within its
/// crate: `crates/tcp/src/cc/reno.rs` → `["cc", "reno"]`;
/// `src/lib.rs`, `src/main.rs`, `src/bin/*.rs` and test-like files map
/// to the crate root.
pub fn module_path_of(rel_path: &str, crate_dir: &str) -> Vec<String> {
    let local = if crate_dir.is_empty() {
        rel_path
    } else {
        rel_path
            .strip_prefix(crate_dir)
            .and_then(|p| p.strip_prefix('/'))
            .unwrap_or(rel_path)
    };
    let Some(under_src) = local.strip_prefix("src/") else {
        return Vec::new(); // tests/, benches/, examples/
    };
    if under_src == "lib.rs" || under_src == "main.rs" || under_src.starts_with("bin/") {
        return Vec::new();
    }
    let stem = under_src.strip_suffix(".rs").unwrap_or(under_src);
    let mut segs: Vec<String> = stem.split('/').map(str::to_string).collect();
    if segs.last().is_some_and(|s| s == "mod") {
        segs.pop();
    }
    segs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_paths_from_file_locations() {
        assert_eq!(
            module_path_of("crates/tcp/src/cc/reno.rs", "crates/tcp"),
            ["cc", "reno"]
        );
        assert_eq!(
            module_path_of("crates/tcp/src/cc/mod.rs", "crates/tcp"),
            ["cc"]
        );
        assert!(module_path_of("crates/tcp/src/lib.rs", "crates/tcp").is_empty());
        assert!(module_path_of("crates/tcp/src/bin/tool.rs", "crates/tcp").is_empty());
        assert!(module_path_of("crates/tcp/tests/it.rs", "crates/tcp").is_empty());
        assert_eq!(module_path_of("src/lib.rs", ""), Vec::<String>::new());
    }

    #[test]
    fn real_workspace_crate_graph_loads() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .unwrap()
            .to_path_buf();
        let g = CrateGraph::load(&root).unwrap();
        let idents: Vec<&str> = g.crates.iter().map(|c| c.ident.as_str()).collect();
        for expect in [
            "netsim",
            "trim_tcp",
            "trim_core",
            "trim_check",
            "trim_workload",
            "trim_lint",
            "tcp_trim",
            "rand",
        ] {
            assert!(idents.contains(&expect), "missing {expect} in {idents:?}");
        }
        // File → crate mapping picks the most specific directory.
        assert_eq!(
            g.crate_of("crates/tcp/src/conn.rs").unwrap().ident,
            "trim_tcp"
        );
        assert_eq!(g.crate_of("src/lib.rs").unwrap().ident, "tcp_trim");
        assert_eq!(
            g.crate_of("tests/metamorphic.rs").unwrap().ident,
            "tcp_trim"
        );
        assert_eq!(
            g.crate_of("crates/compat/rand/src/lib.rs").unwrap().ident,
            "rand"
        );
        // Dependency closure: trim_tcp sees netsim and trim_core but
        // never the harness.
        let vis = g.visible_from("trim_tcp", false);
        assert!(vis.contains(&"netsim".to_string()));
        assert!(vis.contains(&"trim_core".to_string()));
        assert!(!vis.contains(&"trim_harness".to_string()));
    }

    #[test]
    fn visible_from_includes_dev_deps_only_when_asked() {
        let g = CrateGraph {
            crates: vec![
                CrateInfo {
                    ident: "a".into(),
                    dir: "crates/a".into(),
                    deps: vec!["b".into()],
                    dev_deps: vec!["c".into()],
                },
                CrateInfo {
                    ident: "b".into(),
                    dir: "crates/b".into(),
                    deps: vec![],
                    dev_deps: vec![],
                },
                CrateInfo {
                    ident: "c".into(),
                    dir: "crates/c".into(),
                    deps: vec!["b".into()],
                    dev_deps: vec![],
                },
            ],
        };
        assert_eq!(g.visible_from("a", false), ["a", "b"]);
        assert_eq!(g.visible_from("a", true), ["a", "b", "c"]);
    }
}
