//! Diagnostics: stable codes, deterministic ordering, and the text and
//! JSON renderings.
//!
//! Output must itself be deterministic (this is the determinism linter):
//! diagnostics sort by `(path, line, code, message)` and the JSON schema
//! is versioned and covered by a stability test, so CI consumers can
//! parse it without chasing format drift.

use std::fmt;

/// How a finding affects the exit code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Severity {
    /// Reported and fails the run (exit 1). The default.
    #[default]
    Deny,
    /// Reported but does not fail the run on its own (configured per
    /// rule with `severity = "warn"` in `Lint.toml`).
    Warn,
}

impl Severity {
    /// The name used in `Lint.toml` and the JSON rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code, `TL001`…; artifact checks use `TL1xx`, semantic
    /// (interprocedural) checks `TL2xx`.
    pub code: &'static str,
    /// Rule name as used in suppressions and `Lint.toml` sections.
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line (0 for whole-file / whole-workspace findings).
    pub line: u32,
    /// Human-readable description with the how-to-fix.
    pub message: String,
    /// Whether this finding fails the run.
    pub severity: Severity,
}

impl Diagnostic {
    /// The deterministic report order.
    pub fn sort_key(&self) -> (String, u32, &'static str, String) {
        (
            self.path.clone(),
            self.line,
            self.code,
            self.message.clone(),
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Deny => "",
            Severity::Warn => " (warn)",
        };
        write!(
            f,
            "{}:{}: {} [{}]{} {}",
            self.path, self.line, self.code, self.rule, tag, self.message
        )
    }
}

/// Sorts diagnostics into report order.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by_key(|d| d.sort_key());
}

/// Escapes a string for JSON output.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the machine-readable report.
///
/// Schema (version 2 — v1 plus the `severity` field):
/// ```json
/// {
///   "version": 2,
///   "diagnostics": [
///     {"code": "TL001", "rule": "no-wall-clock", "path": "crates/x/src/a.rs",
///      "line": 12, "severity": "deny", "message": "..."}
///   ],
///   "summary": {"files": 120, "diagnostics": 1}
/// }
/// ```
/// Diagnostics are pre-sorted; two runs over the same tree produce
/// byte-identical output.
pub fn render_json(diags: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::from("{\n  \"version\": 2,\n  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"code\": \"{}\", \"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"severity\": \"{}\", \"message\": \"{}\"}}",
            d.code,
            d.rule,
            json_escape(&d.path),
            d.line,
            d.severity.as_str(),
            json_escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"summary\": {{\"files\": {}, \"diagnostics\": {}}}\n}}\n",
        files_scanned,
        diags.len()
    ));
    out
}

/// Renders the human-readable report (one line per diagnostic plus a
/// summary line).
pub fn render_text(diags: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out.push_str(&format!(
        "trim-lint: {} file(s) scanned, {} diagnostic(s)\n",
        files_scanned,
        diags.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(code: &'static str, rule: &'static str, path: &str, line: u32, msg: &str) -> Diagnostic {
        Diagnostic {
            code,
            rule,
            path: path.to_string(),
            line,
            message: msg.to_string(),
            severity: Severity::Deny,
        }
    }

    #[test]
    fn sorting_is_total_and_stable() {
        let mut v = vec![
            d("TL004", "no-panic-in-library", "b.rs", 3, "x"),
            d("TL001", "no-wall-clock", "a.rs", 9, "x"),
            d("TL001", "no-wall-clock", "a.rs", 2, "x"),
        ];
        sort(&mut v);
        assert_eq!(v[0].path, "a.rs");
        assert_eq!(v[0].line, 2);
        assert_eq!(v[2].path, "b.rs");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn empty_report_renders_empty_array() {
        let j = render_json(&[], 5);
        assert!(j.contains("\"diagnostics\": []"));
        assert!(j.contains("\"files\": 5"));
    }
}
