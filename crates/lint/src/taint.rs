//! The interprocedural taint engine and the semantic (`TL2xx`) rules.
//!
//! The lexical rules (TL001/TL002) catch a wall-clock read or a std
//! `HashMap` *where it is written*. They cannot catch a simulation-path
//! function that reaches one **through a helper** — possibly in another
//! crate — which is exactly the gap the topology-sharding refactor
//! cannot tolerate. This module closes it:
//!
//! 1. Every function body is scanned for **direct taint sources**
//!    (wall-clock reads, std hash collections, ambient-entropy PRNG
//!    constructors).
//! 2. Taint propagates callee→caller over the conservative call graph
//!    ([`crate::callgraph`]) to a fixed point, recording for each
//!    tainted function the *shortest, lexicographically-least* path to
//!    a source so reports are deterministic and readable.
//! 3. Reports fire at the **frontier**: the simulation-path function
//!    where taint first enters the audited region, not every function
//!    above it — one diagnostic per entry point, with the full chain in
//!    the message.
//!
//! Alongside the taint rules, this module hosts the two cross-check
//! rules of the family: TL203 (shard-safety inventory: every
//! shared-mutable-state site a sharded scheduler would race on) and
//! TL205 (monitor coverage: every `MonitorEvent` variant both emitted
//! by a sim site and consumed by a monitor or test).

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use crate::callgraph::{self, CallGraph};
use crate::config::Config;
use crate::context::SourceFile;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::parser::{self, ParsedFile};
use crate::rules;
use crate::symbols::{CrateGraph, SymbolTable};
use crate::Report;

/// The three things that can flow along calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaintKind {
    /// Reaches `Instant::now` / `SystemTime`.
    WallClock,
    /// Reaches std `HashMap`/`HashSet` (per-process-random iteration).
    UnorderedIter,
    /// Reaches an ambient-entropy PRNG constructor.
    UnseededRandom,
}

/// All kinds, in index order.
pub const KINDS: [TaintKind; 3] = [
    TaintKind::WallClock,
    TaintKind::UnorderedIter,
    TaintKind::UnseededRandom,
];

impl TaintKind {
    /// Rule name (Lint.toml section / suppression name) for this kind.
    pub fn rule(self) -> &'static str {
        match self {
            TaintKind::WallClock => "transitive-wall-clock",
            TaintKind::UnorderedIter => "transitive-unordered-iteration",
            TaintKind::UnseededRandom => "unseeded-randomness",
        }
    }

    fn index(self) -> usize {
        match self {
            TaintKind::WallClock => 0,
            TaintKind::UnorderedIter => 1,
            TaintKind::UnseededRandom => 2,
        }
    }
}

/// Identifiers whose appearance constructs a PRNG from ambient entropy
/// rather than the splitmix64 seed chain.
const ENTROPY_IDENTS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "OsRng",
    "getrandom",
    "SystemRandom",
    "RandomState",
];

/// A direct taint source inside one function.
#[derive(Clone, Debug)]
pub struct DirectHit {
    /// The offending token, for the report.
    pub token: String,
    /// Its line.
    pub line: u32,
}

/// Per-function, per-kind taint state after propagation.
#[derive(Debug, Default)]
pub struct TaintState {
    /// `direct[fn][kind]`: the function's own source, if any.
    pub direct: Vec<[Option<DirectHit>; 3]>,
    /// `tainted[fn][kind]`: reaches a source (directly or transitively).
    pub tainted: Vec<[bool; 3]>,
    /// Shortest distance to a source (`0` = direct).
    pub depth: Vec<[u32; 3]>,
    /// The callee taint arrives through, on the minimal chain.
    pub next_hop: Vec<[Option<usize>; 3]>,
}

/// Everything the semantic pass computed — kept so `--callgraph` can
/// render the dump from the same analysis that produced the report.
#[derive(Debug)]
pub struct Analysis {
    /// Analyzed + parsed files, sorted by path.
    pub files: Vec<(SourceFile, ParsedFile)>,
    /// Workspace crate/dependency graph.
    pub crates: CrateGraph,
    /// All functions.
    pub table: SymbolTable,
    /// Resolved call edges.
    pub graph: CallGraph,
    /// Propagated taint.
    pub taint: TaintState,
}

impl Analysis {
    /// Runs the full semantic front-end (lex → parse → symbols → call
    /// graph → taint fixed point) over the workspace at `root`.
    pub fn build(root: &Path, cfg: &Config) -> Result<Analysis, String> {
        let rels = crate::collect_files(root, cfg)?;
        let mut files = Vec::with_capacity(rels.len());
        for rel in &rels {
            let src = fs::read_to_string(root.join(rel))
                .map_err(|e| format!("cannot read {rel}: {e}"))?;
            let f = SourceFile::analyze(rel, src);
            let p = parser::parse(&f);
            files.push((f, p));
        }
        let crates = CrateGraph::load(root)?;
        let table = SymbolTable::build(&crates, &files);
        let graph = callgraph::build(&crates, &table, &files);
        let taint = propagate(cfg, &table, &graph, &files);
        Ok(Analysis {
            files,
            crates,
            table,
            graph,
            taint,
        })
    }

    /// Per-function taint-rule labels for the `--callgraph` dump.
    pub fn taint_labels(&self) -> Vec<Vec<&'static str>> {
        (0..self.table.fns.len())
            .map(|id| {
                KINDS
                    .iter()
                    .filter(|k| self.taint.tainted[id][k.index()])
                    .map(|k| k.rule())
                    .collect()
            })
            .collect()
    }

    /// Renders the versioned `--callgraph` JSON dump.
    pub fn render_callgraph(&self) -> String {
        callgraph::render_json(&self.table, &self.graph, &self.taint_labels())
    }
}

/// Scans one function's item span for direct sources. Seeding respects
/// each rule's `source-allow-paths` (a vouched-for file neither seeds
/// nor hides taint flowing *through* it).
fn direct_hits(cfg: &Config, src: &SourceFile, span: (usize, usize)) -> [Option<DirectHit>; 3] {
    let mut out: [Option<DirectHit>; 3] = [None, None, None];
    let seeds: Vec<bool> = KINDS
        .iter()
        .map(|k| cfg.seeds_taint(k.rule(), &src.rel_path))
        .collect();
    let in_span: Vec<usize> = src
        .sig
        .iter()
        .copied()
        .filter(|&i| src.tokens[i].start >= span.0 && src.tokens[i].end <= span.1)
        .collect();
    for (j, &i) in in_span.iter().enumerate() {
        let t = &src.tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let text = src.text(t);
        let kind = match text {
            "Instant" => {
                let next = |o: usize| in_span.get(j + o).map(|&i| src.text(&src.tokens[i]));
                if next(1) == Some("::") && next(2) == Some("now") {
                    Some(TaintKind::WallClock)
                } else {
                    None
                }
            }
            "SystemTime" => Some(TaintKind::WallClock),
            "HashMap" | "HashSet" => Some(TaintKind::UnorderedIter),
            t if ENTROPY_IDENTS.contains(&t) => Some(TaintKind::UnseededRandom),
            _ => None,
        };
        if let Some(k) = kind {
            let ki = k.index();
            if seeds[ki] && out[ki].is_none() {
                out[ki] = Some(DirectHit {
                    token: text.to_string(),
                    line: t.line,
                });
            }
        }
    }
    out
}

/// Propagates taint callee→caller to a fixed point. Deterministic: the
/// iteration visits functions in id order and ties between equally-deep
/// chains break on the callee's qualified path, so `next_hop` — and
/// every chain printed from it — is unique for a given workspace.
fn propagate(
    cfg: &Config,
    table: &SymbolTable,
    graph: &CallGraph,
    files: &[(SourceFile, ParsedFile)],
) -> TaintState {
    let by_path: BTreeMap<&str, &SourceFile> = files
        .iter()
        .map(|(s, _)| (s.rel_path.as_str(), s))
        .collect();
    let n = table.fns.len();
    let mut st = TaintState {
        direct: Vec::with_capacity(n),
        tainted: vec![[false; 3]; n],
        depth: vec![[u32::MAX; 3]; n],
        next_hop: vec![[None; 3]; n],
    };
    for f in &table.fns {
        let hits = match by_path.get(f.file.as_str()) {
            Some(src) => direct_hits(cfg, src, f.span),
            None => [None, None, None],
        };
        for (ki, h) in hits.iter().enumerate() {
            if h.is_some() {
                st.tainted[f.id][ki] = true;
                st.depth[f.id][ki] = 0;
            }
        }
        st.direct.push(hits);
    }
    loop {
        let mut changed = false;
        for id in 0..n {
            for ki in 0..3 {
                if st.direct[id][ki].is_some() {
                    continue; // direct sources are depth-0 anchors
                }
                // Best chain through any tainted callee.
                let mut best: Option<(u32, String, usize)> = None;
                for &c in &graph.edges[id].calls {
                    if !st.tainted[c][ki] || st.depth[c][ki] == u32::MAX {
                        continue;
                    }
                    let cand = (
                        st.depth[c][ki].saturating_add(1),
                        table.fns[c].qualified(),
                        c,
                    );
                    let better = match &best {
                        None => true,
                        Some(b) => (cand.0, &cand.1) < (b.0, &b.1),
                    };
                    if better {
                        best = Some(cand);
                    }
                }
                if let Some((d, _, c)) = best {
                    // `best` is a deterministic function of callee
                    // depths, which only ever decrease — so adopting it
                    // whenever it differs converges.
                    let improves = !st.tainted[id][ki]
                        || d < st.depth[id][ki]
                        || (d == st.depth[id][ki] && st.next_hop[id][ki] != Some(c));
                    if improves {
                        st.tainted[id][ki] = true;
                        st.depth[id][ki] = d;
                        st.next_hop[id][ki] = Some(c);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    st
}

/// Renders the chain from a frontier function down to the source.
fn chain_string(a: &Analysis, id: usize, ki: usize) -> String {
    let mut parts = Vec::new();
    let mut cur = id;
    for _ in 0..16 {
        parts.push(a.table.fns[cur].qualified());
        if let Some(hit) = &a.taint.direct[cur][ki] {
            parts.push(format!(
                "`{}` at {}:{}",
                hit.token, a.table.fns[cur].file, hit.line
            ));
            return parts.join(" -> ");
        }
        match a.taint.next_hop[cur][ki] {
            Some(nx) => cur = nx,
            None => break,
        }
    }
    parts.push("…".to_string());
    parts.join(" -> ")
}

fn sdiag(cfg: &Config, name: &'static str, path: &str, line: u32, message: String) -> Diagnostic {
    let ri = rules::info(name);
    Diagnostic {
        code: ri.code,
        rule: ri.name,
        path: path.to_string(),
        line,
        message,
        severity: cfg.severity(name),
    }
}

/// The full semantic pass: builds the analysis, runs TL201–TL205,
/// applies inline suppressions, and reports unused TL2xx suppressions.
pub fn run_semantic(root: &Path, cfg: &Config) -> Result<(Report, Analysis), String> {
    let mut analysis = Analysis::build(root, cfg)?;
    let mut raw = Vec::new();
    taint_rules(cfg, &analysis, &mut raw);
    shard_safety(cfg, &analysis, &mut raw);
    monitor_coverage(cfg, &analysis, &mut raw);

    // Apply inline suppressions, mirroring source-mode semantics: a
    // valid (reasoned) suppression of the rule on the diagnostic's line
    // — or file-scoped — absorbs it.
    let mut by_path: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, (f, _)) in analysis.files.iter().enumerate() {
        by_path.insert(f.rel_path.clone(), vec![i]);
    }
    let mut out = Vec::new();
    for d in raw {
        let mut hit = false;
        if let Some(idxs) = by_path.get(&d.path) {
            for &fi in idxs {
                for s in analysis.files[fi].0.suppressions.iter_mut() {
                    if s.reason.is_some()
                        && s.rule == d.rule
                        && (s.file_scope || s.target_line == d.line)
                    {
                        s.used = true;
                        hit = true;
                    }
                }
            }
        }
        if !hit {
            out.push(d);
        }
    }
    // Unused TL2xx suppressions: only this pass can judge them (source
    // mode skips them symmetrically).
    for (f, _) in &analysis.files {
        for s in &f.suppressions {
            if rules::is_semantic(&s.rule) && s.reason.is_some() && !s.used {
                out.push(sdiag(
                    cfg,
                    "unused-suppression",
                    &f.rel_path,
                    s.comment_line,
                    format!(
                        "suppression of `{}` matched no semantic diagnostic on line {}; \
                         remove it",
                        s.rule, s.target_line
                    ),
                ));
            }
        }
    }
    crate::diag::sort(&mut out);
    let files_scanned = analysis.files.len();
    Ok((
        Report {
            diagnostics: out,
            files_scanned,
        },
        analysis,
    ))
}

/// TL201/TL202/TL204: frontier reports over the propagated taint.
fn taint_rules(cfg: &Config, a: &Analysis, out: &mut Vec<Diagnostic>) {
    for f in &a.table.fns {
        if f.in_test || f.test_like {
            continue;
        }
        for kind in KINDS {
            let rule = kind.rule();
            let ki = kind.index();
            if !cfg.rule_applies(rule, &f.file) || !a.taint.tainted[f.id][ki] {
                continue;
            }
            if let Some(hit) = &a.taint.direct[f.id][ki] {
                // Direct wall-clock / hash-collection uses are TL001 and
                // TL002's job; only unseeded randomness reports its
                // direct form here (no lexical twin exists for it).
                if kind == TaintKind::UnseededRandom {
                    out.push(sdiag(
                        cfg,
                        rule,
                        &f.file,
                        hit.line,
                        format!(
                            "`{}` constructs a PRNG from ambient entropy in `{}`: every \
                             stream in this workspace must derive from the splitmix64 \
                             seed chain so runs replay bit-exactly",
                            hit.token,
                            f.qualified()
                        ),
                    ));
                }
                continue;
            }
            // Frontier test: some taint-contributing callee is not
            // itself reportable (it is a direct source, or lives outside
            // the audited region) — taint enters the sim path *here*.
            let entry = a.graph.edges[f.id].calls.iter().any(|&c| {
                let cs = &a.table.fns[c];
                a.taint.tainted[c][ki]
                    && (a.taint.direct[c][ki].is_some()
                        || cs.in_test
                        || cs.test_like
                        || !cfg.rule_applies(rule, &cs.file))
            });
            if !entry {
                continue;
            }
            let what = match kind {
                TaintKind::WallClock => "a wall-clock read",
                TaintKind::UnorderedIter => "std HashMap/HashSet (unordered iteration)",
                TaintKind::UnseededRandom => "an ambient-entropy PRNG",
            };
            out.push(sdiag(
                cfg,
                rule,
                &f.file,
                f.line,
                format!(
                    "simulation-path fn `{}` transitively reaches {}: {}",
                    f.qualified(),
                    what,
                    chain_string(a, f.id, ki)
                ),
            ));
        }
    }
}

/// Type names whose appearance in a `static` makes it interior-mutable
/// shared state.
const INTERIOR_MUT: &[&str] = &[
    "Mutex",
    "RwLock",
    "OnceLock",
    "OnceCell",
    "LazyLock",
    "UnsafeCell",
    "RefCell",
    "Cell",
];

/// TL203: the shard-safety inventory. Lexical by design — the point is
/// an *exhaustive enumeration* of every construct a sharded scheduler
/// could race on, so the sharding PR can drain the list to zero and CI
/// keeps it there.
fn shard_safety(cfg: &Config, a: &Analysis, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "shard-safety";
    for (src, _) in &a.files {
        if !cfg.rule_applies(RULE, &src.rel_path) {
            continue;
        }
        let text = |k: usize| -> Option<&str> { src.sig.get(k).map(|&i| src.text(&src.tokens[i])) };
        for (k, &i) in src.sig.iter().enumerate() {
            let t = &src.tokens[i];
            if t.kind != TokenKind::Ident || src.in_test_region(t.start) {
                continue;
            }
            let found: Option<String> = match src.text(t) {
                "static" if text(k + 1) == Some("mut") => {
                    Some("`static mut`: writable global state".to_string())
                }
                "static" => {
                    // `static X: Atomic…/Mutex<…> = …` — interior-mutable
                    // global. Scan the declared type up to the `=`/`;`.
                    let mut j = k + 1;
                    let mut found = None;
                    while let Some(tt) = text(j) {
                        if tt == "=" || tt == ";" || j > k + 24 {
                            break;
                        }
                        if tt.starts_with("Atomic") || INTERIOR_MUT.contains(&tt) {
                            found = Some(format!("interior-mutable `static` (`{tt}`)"));
                            break;
                        }
                        j += 1;
                    }
                    found
                }
                "thread_local" if text(k + 1) == Some("!") => {
                    Some("`thread_local!`: per-thread state diverges across shards".to_string())
                }
                "Rc" => Some("`Rc`: non-atomic shared ownership".to_string()),
                "RefCell" | "Cell" => Some(format!(
                    "`{}`: single-thread interior mutability",
                    src.text(t)
                )),
                _ => None,
            };
            if let Some(what) = found {
                out.push(sdiag(
                    cfg,
                    RULE,
                    &src.rel_path,
                    t.line,
                    format!(
                        "{what}; the topology-sharding refactor requires all \
                         sim-crate state to be Ctx-threaded (owned by the shard) — \
                         migrate it or suppress with the audit reason"
                    ),
                ));
            }
        }
    }
}

/// TL205: cross-checks the `MonitorEvent` catalog. Every variant must
/// be **emitted** by at least one non-test sim site (expression
/// position) and **consumed** by at least one monitor or test (pattern
/// position: `match` arm, `if let`/`let … else`, or an or-pattern).
/// A variant failing either leg is dead telemetry or an invariant
/// nobody checks.
fn monitor_coverage(cfg: &Config, a: &Analysis, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "monitor-coverage";
    // The defining file: wherever `enum MonitorEvent` lives (exactly one
    // in this workspace; fixtures define their own).
    let mut def: Option<(&SourceFile, Vec<(String, u32)>)> = None;
    for (src, _) in &a.files {
        if let Some(variants) = enum_variants(src, "MonitorEvent") {
            if cfg.rule_applies(RULE, &src.rel_path) {
                def = Some((src, variants));
            }
            break;
        }
    }
    let Some((def_src, variants)) = def else {
        return;
    };
    let mut emitted: BTreeMap<&str, bool> = BTreeMap::new();
    let mut consumed: BTreeMap<&str, bool> = BTreeMap::new();
    for (v, _) in &variants {
        emitted.insert(v, false);
        consumed.insert(v, false);
    }
    for (src, _) in &a.files {
        scan_event_uses(src, &variants, &mut emitted, &mut consumed, def_src);
    }
    for (v, line) in &variants {
        if !emitted[v.as_str()] {
            out.push(sdiag(
                cfg,
                RULE,
                &def_src.rel_path,
                *line,
                format!(
                    "MonitorEvent::{v} is never emitted by any non-test sim site: \
                     dead telemetry — emit it or retire the variant"
                ),
            ));
        }
        if !consumed[v.as_str()] {
            out.push(sdiag(
                cfg,
                RULE,
                &def_src.rel_path,
                *line,
                format!(
                    "MonitorEvent::{v} is consumed by no monitor or test: the \
                     invariant it reports is checked nowhere — add a trim-check \
                     monitor (or a test) that observes it"
                ),
            ));
        }
    }
}

/// Extracts `(variant, line)` pairs of `enum NAME { … }` from a file,
/// or `None` if the file does not define it.
fn enum_variants(src: &SourceFile, name: &str) -> Option<Vec<(String, u32)>> {
    let text = |k: usize| -> Option<&str> { src.sig.get(k).map(|&i| src.text(&src.tokens[i])) };
    let mut k = 0usize;
    loop {
        if text(k)? == "enum" && text(k + 1) == Some(name) {
            break;
        }
        k += 1;
    }
    // Advance to the opening brace (skipping generics, none expected).
    let mut j = k + 2;
    while text(j).is_some_and(|t| t != "{") {
        j += 1;
    }
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut expect_variant = false;
    while let Some(t) = text(j) {
        match t {
            "{" | "(" | "[" => {
                depth += 1;
                if depth == 1 {
                    expect_variant = true;
                }
            }
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "," if depth == 1 => expect_variant = true,
            "#" if depth == 1 => {
                // Skip the attribute's bracket group.
                let mut ad = 0i32;
                j += 1;
                while let Some(at) = text(j) {
                    match at {
                        "[" => ad += 1,
                        "]" => {
                            ad -= 1;
                            if ad == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            _ => {
                if depth == 1 && expect_variant {
                    let tok = &src.tokens[src.sig[j]];
                    if tok.kind == TokenKind::Ident {
                        variants.push((t.to_string(), tok.line));
                    }
                    expect_variant = false;
                }
            }
        }
        j += 1;
    }
    Some(variants)
}

/// Classifies every `MonitorEvent::Variant` occurrence in one file.
fn scan_event_uses<'v>(
    src: &SourceFile,
    variants: &'v [(String, u32)],
    emitted: &mut BTreeMap<&'v str, bool>,
    consumed: &mut BTreeMap<&'v str, bool>,
    def_src: &SourceFile,
) {
    let text = |k: usize| -> Option<&str> { src.sig.get(k).map(|&i| src.text(&src.tokens[i])) };
    for k in 0..src.sig.len() {
        if text(k) != Some("MonitorEvent") || text(k + 1) != Some("::") {
            continue;
        }
        let Some(v) = text(k + 2) else { continue };
        let Some(entry) = variants.iter().find(|(name, _)| name == v) else {
            continue;
        };
        let vname = entry.0.as_str();
        let pos = src.tokens[src.sig[k]].start;
        let in_test = src.in_test_region(pos);
        // Pattern position? `let`/`|` before, or `=>`/`|` after the
        // payload group.
        let prev = k.checked_sub(1).and_then(text);
        let mut j = k + 3;
        if text(j) == Some("{") || text(j) == Some("(") {
            let open = text(j).unwrap().to_string();
            let close = if open == "{" { "}" } else { ")" };
            let mut depth = 0i32;
            while let Some(t) = text(j) {
                if t == open {
                    depth += 1;
                } else if t == close {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        let next = text(j);
        let is_pattern =
            prev == Some("let") || prev == Some("|") || next == Some("=>") || next == Some("|");
        if is_pattern || in_test {
            consumed.insert(vname, true);
        } else if src.rel_path != def_src.rel_path {
            // Expression position outside tests and outside the defining
            // file's own plumbing: an emission site.
            emitted.insert(vname, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_variant_extraction_handles_payloads_and_attrs() {
        let src = SourceFile::analyze(
            "crates/netsim/src/monitor.rs",
            "pub enum MonitorEvent {\n\
             Clock { to: u64 },\n\
             #[allow(dead_code)]\n\
             Dropped(u32),\n\
             Plain,\n\
             }\n\
             pub struct Other { field: u32 }\n"
                .to_string(),
        );
        let v = enum_variants(&src, "MonitorEvent").unwrap();
        let names: Vec<&str> = v.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["Clock", "Dropped", "Plain"]);
    }

    #[test]
    fn event_use_classification() {
        let defsrc = SourceFile::analyze(
            "crates/netsim/src/monitor.rs",
            "pub enum MonitorEvent { A { x: u64 }, B, C { y: u64 } }".to_string(),
        );
        let variants = enum_variants(&defsrc, "MonitorEvent").unwrap();
        let user = SourceFile::analyze(
            "crates/netsim/src/sim.rs",
            "fn emit_site(s: &mut S) { s.emit(MonitorEvent::A { x: 1 }); }\n\
             fn consume(ev: &MonitorEvent) { match ev { MonitorEvent::C { y } => {}, _ => {} } }\n"
                .to_string(),
        );
        let mut emitted: BTreeMap<&str, bool> =
            variants.iter().map(|(v, _)| (v.as_str(), false)).collect();
        let mut consumed: BTreeMap<&str, bool> =
            variants.iter().map(|(v, _)| (v.as_str(), false)).collect();
        scan_event_uses(&user, &variants, &mut emitted, &mut consumed, &defsrc);
        assert!(emitted["A"] && !consumed["A"]);
        assert!(!emitted["B"] && !consumed["B"]);
        assert!(consumed["C"] && !emitted["C"]);
    }
}
