//! # trim-lint — determinism & simulation-hygiene static analysis
//!
//! Every guarantee this workspace ships — byte-identical campaign
//! manifests at any `--jobs`, replayable fuzz corpora, golden CSVs —
//! rests on source-level discipline: no wall-clock reads in simulation
//! code, no iteration over randomly-keyed maps, no exact float
//! comparisons in reductions, no panics aborting a half-written
//! campaign. The runtime monitors (`trim-check`) catch such bugs when
//! they corrupt a run; this crate catches the whole bug *class* before
//! anything runs, at the source level.
//!
//! The analyzer is std-only and from scratch: a lossless lexer
//! ([`lexer`]), per-file context extraction ([`context`]: file roles,
//! `#[cfg(test)]` regions, inline suppressions), a rule catalog
//! ([`rules`]: lexical codes `TL001`–`TL008`), and an
//! experiment-artifact cross-checker ([`artifacts`]: codes
//! `TL101`–`TL104`). On top of the same token stream sits the semantic
//! layer (`--semantic`): a recursive-descent item parser ([`parser`]),
//! a workspace symbol table and crate graph ([`symbols`]), a
//! dependency-bounded conservative call graph ([`callgraph`]), and an
//! interprocedural taint engine ([`taint`]) behind rules
//! `TL201`–`TL205`. Configuration lives in the workspace-root
//! `Lint.toml` ([`config`]); findings render as text or versioned JSON
//! ([`diag`]).
//!
//! Suppressions are inline comments with a mandatory reason:
//!
//! ```text
//! let t0 = Instant::now(); // trim-lint: allow(no-wall-clock, reason = "progress display only")
//! ```
//!
//! Exit-code contract of the `trim-lint` binary: `0` clean (or only
//! `severity = "warn"` findings), `1` at least one deny-severity
//! diagnostic, `2` usage or I/O error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(
    not(test),
    deny(clippy::dbg_macro, clippy::print_stdout, clippy::float_cmp)
)]

use std::fs;
use std::path::{Path, PathBuf};

pub mod artifacts;
pub mod callgraph;
pub mod config;
pub mod context;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod symbols;
pub mod taint;

pub use config::Config;
pub use diag::Diagnostic;

/// Result of a workspace scan.
#[derive(Clone, Debug)]
pub struct Report {
    /// Findings, already in deterministic report order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Loads `Lint.toml` from the workspace root, or the permissive default
/// configuration (every rule everywhere) when the file is absent.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("Lint.toml");
    if !path.is_file() {
        return Ok(Config::default());
    }
    let text = fs::read_to_string(&path).map_err(|e| format!("cannot read Lint.toml: {e}"))?;
    Config::parse(&text)
}

/// Collects every `.rs` file under `root` that the config does not
/// exclude, as sorted workspace-relative paths (determinism: two scans
/// of the same tree visit files in the same order).
pub fn collect_files(root: &Path, cfg: &Config) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    walk(root, root, cfg, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, cfg: &Config, out: &mut Vec<String>) -> Result<(), String> {
    let rd = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = rd.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let rel = rel_path(root, &path);
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            // `target` and VCS internals are never interesting; other
            // exclusions come from the config.
            if name == "target" || name.starts_with('.') || cfg.is_excluded(&rel) {
                continue;
            }
            walk(root, &path, cfg, out)?;
        } else if name.ends_with(".rs") && !cfg.is_excluded(&rel) {
            out.push(rel);
        }
    }
    Ok(())
}

/// Workspace-relative path with `/` separators.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let s: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    s.join("/")
}

/// Runs every source rule over the workspace at `root` under `cfg`.
pub fn run_workspace(root: &Path, cfg: &Config) -> Result<Report, String> {
    let files = collect_files(root, cfg)?;
    let mut diagnostics = Vec::new();
    let files_scanned = files.len();
    for rel in &files {
        let src =
            fs::read_to_string(root.join(rel)).map_err(|e| format!("cannot read {rel}: {e}"))?;
        let mut file = context::SourceFile::analyze(rel, src);
        diagnostics.extend(rules::check_file(&mut file, cfg));
    }
    for d in &mut diagnostics {
        d.severity = cfg.severity(d.rule);
    }
    diag::sort(&mut diagnostics);
    Ok(Report {
        diagnostics,
        files_scanned,
    })
}

/// Runs the semantic (interprocedural) rules (`--semantic`) at `root`,
/// returning the report plus the analysis (for `--callgraph`).
pub fn run_semantic(root: &Path, cfg: &Config) -> Result<(Report, taint::Analysis), String> {
    taint::run_semantic(root, cfg)
}

/// Runs the artifact cross-checker (`--artifacts`) at `root`.
pub fn run_artifacts(root: &Path) -> Result<Report, String> {
    let mut diagnostics = artifacts::check_artifacts(root)?;
    diag::sort(&mut diagnostics);
    Ok(Report {
        diagnostics,
        files_scanned: 0,
    })
}

/// Ascends from `start` to the nearest directory containing `Lint.toml`
/// (the workspace root marker for this tool).
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    for _ in 0..8 {
        if dir.join("Lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            break;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_path_uses_forward_slashes() {
        let root = Path::new("/a/b");
        assert_eq!(
            rel_path(root, Path::new("/a/b/crates/x/src/l.rs")),
            "crates/x/src/l.rs"
        );
    }

    #[test]
    fn default_config_when_lint_toml_absent() {
        let cfg = load_config(Path::new("/nonexistent-dir-for-trim-lint")).unwrap();
        assert!(cfg.rules.is_empty());
        assert!(cfg.rule_applies("no-wall-clock", "anything.rs"));
    }
}
