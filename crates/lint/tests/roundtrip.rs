//! Round-trip guarantees the semantic layer is built on: the lexer is
//! lossless (token concatenation reproduces the file byte-for-byte)
//! and the item parser's spans tile the file without overlap, so
//! reassembling gaps + spans also reproduces the bytes. Checked
//! exhaustively over every file the real workspace scan visits, and
//! probabilistically over generated token soup.

use std::fs;
use std::path::{Path, PathBuf};

use proptest::prelude::*;
use trim_lint::context::SourceFile;
use trim_lint::{lexer, parser};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has two ancestors")
        .to_path_buf()
}

fn workspace_sources() -> Vec<(String, String)> {
    let root = workspace_root();
    let cfg = trim_lint::load_config(&root).expect("Lint.toml parses");
    let files = trim_lint::collect_files(&root, &cfg).expect("walk succeeds");
    assert!(files.len() > 100, "walker saw only {} files", files.len());
    files
        .into_iter()
        .map(|rel| {
            let text = fs::read_to_string(root.join(&rel)).expect("file reads");
            (rel, text)
        })
        .collect()
}

fn relex(text: &str) -> String {
    let tokens = lexer::lex(text);
    let mut rebuilt = String::with_capacity(text.len());
    for t in &tokens {
        rebuilt.push_str(&text[t.start..t.end]);
    }
    rebuilt
}

#[test]
fn every_workspace_file_relexes_byte_for_byte() {
    for (rel, text) in workspace_sources() {
        assert_eq!(relex(&text), text, "{rel} did not re-lex losslessly");
    }
}

#[test]
fn parser_spans_tile_every_workspace_file() {
    for (rel, text) in workspace_sources() {
        let src = SourceFile::analyze(&rel, text.clone());
        let parsed = parser::parse(&src);
        // Top-level item spans: in bounds, strictly increasing,
        // non-overlapping — so gaps + spans reassemble the file.
        let mut rebuilt = String::with_capacity(text.len());
        let mut prev_end = 0usize;
        for &(start, end) in &parsed.top_spans {
            assert!(
                prev_end <= start && start < end && end <= text.len(),
                "{rel}: bad top-level span ({start}, {end}) after {prev_end}"
            );
            rebuilt.push_str(&text[prev_end..start]);
            rebuilt.push_str(&text[start..end]);
            prev_end = end;
        }
        rebuilt.push_str(&text[prev_end..]);
        assert_eq!(rebuilt, text, "{rel} did not reassemble from spans");
        // Every fn span is in bounds and contains its body span.
        for f in &parsed.fns {
            let (fs_, fe) = f.span;
            assert!(
                fs_ < fe && fe <= text.len(),
                "{rel}: fn {} span out of bounds",
                f.name
            );
            if let Some((bs, be)) = f.body {
                assert!(
                    fs_ <= bs && bs < be && be <= fe,
                    "{rel}: fn {} body escapes its item span",
                    f.name
                );
            }
        }
    }
}

/// Syntax fragments whose arbitrary concatenations stress the lexer:
/// strings with escapes, raw strings, char vs lifetime ambiguity,
/// nested block comments, numeric suffixes, multi-char punctuation.
const FRAGMENTS: &[&str] = &[
    "fn f() {}\n",
    "let s = \"a \\\"quoted\\\" str\";",
    "r#\"raw \" inside\"#",
    "'c'",
    "'\\n'",
    "&'a str",
    "1_000u64",
    "1.5e-3",
    "0xdead_beef",
    "// line comment\n",
    "/* block /* nested */ still comment */",
    "x ..= y",
    "a::b::<T>()",
    "#[cfg(test)]",
    "b\"bytes\\x00\"",
    "macro_rules! m { () => {} }",
    " \t\n",
    "ident_with_unicode_après",
];

proptest! {
    #[test]
    fn token_soup_relexes_byte_for_byte(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..64)
    ) {
        let text: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        prop_assert_eq!(relex(&text), text);
    }
}
