// Fixture: a violation carrying a reasoned suppression is silenced, and
// the suppression counts as used (no TL008).
use std::time::Instant;

pub fn timed() -> Instant {
    Instant::now() // trim-lint: allow(no-wall-clock, reason = "fixture: progress display only")
}
