// Fixture: analyzed as a crate root (src/lib.rs), TL006 must fire
// because the `#![forbid(unsafe_code)]` inner attribute is missing.
pub fn safe_but_undeclared() {}
