// Fixture: TL005 must fire on bare >= 1_000_000 decimal literals on a
// simulation path, and spare hex constants and smaller values.
pub fn bad() -> u64 {
    2_000_000 // hit: TL005 (2 ms in disguise)
}

pub fn fine_small() -> u64 {
    999_999
}

pub fn fine_hex() -> u64 {
    0x9e3779b97f4a7c15
}
