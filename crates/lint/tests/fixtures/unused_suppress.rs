// Fixture: a reasoned suppression with nothing to suppress is itself a
// finding (TL008) — stale annotations must not accumulate.
// trim-lint: allow(no-wall-clock, reason = "fixture: nothing here reads the clock")
pub fn quiet() {}
