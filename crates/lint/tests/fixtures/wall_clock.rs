// Fixture: TL001 must fire on both wall-clock sources, and must NOT
// fire on mentions inside strings or comments.
use std::time::{Instant, SystemTime};

pub fn bad_instant() -> Instant {
    Instant::now() // hit: TL001
}

pub fn bad_system_time() -> SystemTime {
    SystemTime::now() // hit: TL001 (SystemTime alone is enough)
}

pub fn fine() -> &'static str {
    // Instant::now() in a comment is not a hit.
    "SystemTime in a string is not a hit"
}
