//! Helper crate: one deterministic helper and one wall-clock reader
//! whose single audited caller carries an explicit suppression.

/// Deterministic helper: callers of this stay clean.
pub fn pure_add(a: u64, b: u64) -> u64 {
    a.wrapping_add(b)
}

/// Reads the wall clock; audited callers must justify themselves.
pub fn wall_now() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

/// Uses a HashMap but sorts before exposing anything — the config
/// lists this file under `source-allow-paths`, so it seeds no taint.
pub fn dedup_count(xs: &[u32]) -> usize {
    let m: std::collections::HashMap<u32, ()> = xs.iter().map(|&x| (x, ())).collect();
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    keys.len()
}
