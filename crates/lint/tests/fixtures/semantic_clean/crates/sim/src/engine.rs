//! Emission sites covering the whole catalog.

use crate::monitor::MonitorEvent;

/// Pushes every catalog variant.
pub fn emit_all(sink: &mut Vec<MonitorEvent>) {
    sink.push(MonitorEvent::Enqueued { pkts: 1 });
    sink.push(MonitorEvent::Drained);
}
