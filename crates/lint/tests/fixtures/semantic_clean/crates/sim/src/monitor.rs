//! Event catalog: every variant is both emitted and consumed.

/// Telemetry emitted by the fixture sim.
pub enum MonitorEvent {
    /// Emitted by the engine and consumed by the observer.
    Enqueued {
        /// Queue depth after the enqueue.
        pkts: u64,
    },
    /// Also emitted and consumed.
    Drained,
}
