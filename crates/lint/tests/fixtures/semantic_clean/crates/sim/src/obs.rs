//! Consumption sites covering the whole catalog.

use crate::monitor::MonitorEvent;

/// Scores an event.
pub fn observe(ev: &MonitorEvent) -> u64 {
    match ev {
        MonitorEvent::Enqueued { pkts } => *pkts,
        MonitorEvent::Drained => 0,
    }
}
