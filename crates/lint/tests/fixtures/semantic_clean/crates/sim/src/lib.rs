//! Audited crate with nothing to report: deterministic call paths, a
//! justified suppression on the one wall-clock caller, and a fully
//! covered event catalog.

pub mod engine;
pub mod monitor;
pub mod obs;

/// Deterministic all the way down.
pub fn step() -> u64 {
    util::pure_add(1, 2)
}

// trim-lint: allow(transitive-wall-clock, reason = "operator-facing progress banner, never feeds sim state")
/// Wall-clock caller with an audited justification.
pub fn banner_elapsed() -> u64 {
    util::wall_now()
}

/// Calls a map helper that the config marks order-safe.
pub fn dedup(xs: &[u32]) -> usize {
    util::dedup_count(xs)
}
