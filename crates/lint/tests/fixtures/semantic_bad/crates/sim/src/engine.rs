//! Emission sites: expression position, outside tests.

use crate::monitor::MonitorEvent;

/// Pushes one covered and one orphaned event.
pub fn emit_all(sink: &mut Vec<MonitorEvent>) {
    sink.push(MonitorEvent::Enqueued { pkts: 1 });
    sink.push(MonitorEvent::Orphaned { pkts: 2 });
}
