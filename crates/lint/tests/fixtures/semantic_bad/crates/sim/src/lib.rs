//! Audited simulation crate: every function here reaches a source only
//! through `util`, so the lexical rules stay silent and the transitive
//! rules must fire.

pub mod engine;
pub mod monitor;
pub mod obs;
pub mod state;

/// TL201: transitively reaches `Instant::now` via `util::wall_now`.
pub fn step() -> u64 {
    util::wall_now()
}

/// TL202: transitively reaches std `HashMap` via `util::count_keys`.
pub fn tally() -> usize {
    util::count_keys()
}

/// TL204 (transitive): reaches `thread_rng` via `util::entropy_seed`.
pub fn reseed() -> u64 {
    util::entropy_seed()
}

/// TL204 (direct): names an ambient-entropy source itself.
pub fn direct_entropy() -> u64 {
    let r = OsRng;
    r.next()
}

/// Clean function carrying a stale TL2xx suppression (TL008 in the
/// semantic pass, and only there).
pub fn settled() -> u64 {
    // trim-lint: allow(transitive-unordered-iteration, reason = "left over")
    util::pure_add(1, 2)
}

struct OsRng;

impl OsRng {
    fn next(&self) -> u64 {
        7
    }
}
