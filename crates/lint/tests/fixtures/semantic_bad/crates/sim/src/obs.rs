//! Consumption sites: pattern position in a monitor.

use crate::monitor::MonitorEvent;

/// Scores an event; never sees `Orphaned`.
pub fn observe(ev: &MonitorEvent) -> u64 {
    match ev {
        MonitorEvent::Enqueued { pkts } => *pkts,
        MonitorEvent::Phantom => 0,
        _ => 1,
    }
}
