//! Shared-mutable-state zoo: one site per TL203 class, plus a
//! test-region decoy the audit must skip.

/// Writable global (TL203: `static mut`).
pub static mut TICK_COUNT: u64 = 0;

/// Interior-mutable global (TL203: `Atomic*` static).
pub static DROPS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

thread_local! {
    /// Per-thread scratch (TL203: `thread_local!`).
    pub static SCRATCH: u64 = 0;
}

/// Non-atomic shared ownership (TL203: `Rc`).
pub fn share(_v: u64) -> std::rc::Rc<u64> {
    Default::default()
}

/// Single-thread interior mutability (TL203: `RefCell`).
pub struct Scratch {
    /// Mutated through a shared reference.
    pub cache: std::cell::RefCell<u64>,
}

/// Single-thread interior mutability (TL203: `Cell`).
pub struct Flag {
    /// Flipped through a shared reference.
    pub dirty: std::cell::Cell<bool>,
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_region_sites_are_not_audited() {
        let c = std::cell::RefCell::new(0u64);
        *c.borrow_mut() += 1;
        assert_eq!(*c.borrow(), 1);
    }
}
