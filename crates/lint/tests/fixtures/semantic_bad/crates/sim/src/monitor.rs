//! The event catalog under the TL205 coverage audit.

/// Telemetry emitted by the fixture sim.
pub enum MonitorEvent {
    /// Emitted by the engine and consumed by the observer: covered.
    Enqueued {
        /// Queue depth after the enqueue.
        pkts: u64,
    },
    /// Emitted but consumed nowhere: dead telemetry (TL205).
    Orphaned {
        /// Packets lost with nobody watching.
        pkts: u64,
    },
    /// Consumed but emitted nowhere: an invariant nobody feeds (TL205).
    Phantom,
}
