//! Helper crate where nondeterminism hides: none of these functions is
//! on an audited path itself, so only the transitive rules can see
//! through them.

/// Reads the wall clock (direct TL201 source, invisible to TL001 here).
pub fn wall_now() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

/// Iterates a std HashMap (direct TL202 source).
pub fn count_keys() -> usize {
    let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    m.len()
}

/// Constructs a PRNG from ambient entropy (direct TL204 source).
pub fn entropy_seed() -> u64 {
    let r = thread_rng();
    r
}

fn thread_rng() -> u64 {
    4
}

/// Deterministic helper: callers of this stay clean.
pub fn pure_add(a: u64, b: u64) -> u64 {
    a.wrapping_add(b)
}
