// Fixture: TL004 must fire on unwrap/expect/panic! in library code and
// spare the same constructs inside #[cfg(test)] regions.
pub fn bad(x: Option<u32>) -> u32 {
    x.unwrap() // hit: TL004
}

pub fn bad_expect(x: Option<u32>) -> u32 {
    x.expect("nope") // hit: TL004
}

pub fn bad_panic() {
    panic!("boom"); // hit: TL004
}

pub fn fine(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(3).unwrap(), 3);
    }
}
