// Fixture: idiomatic simulation code — every rule must stay silent.
use std::collections::BTreeMap;

pub fn schedule(events: &BTreeMap<u64, u32>, now_ns: u64) -> Option<u64> {
    events.range(now_ns..).next().map(|(t, _)| *t)
}

pub fn close_enough(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}
