// Fixture: TL002 must fire on std HashMap/HashSet when the file lives
// on a simulation path.
use std::collections::{HashMap, HashSet};

pub struct State {
    pub flows: HashMap<u64, u64>,
    pub seen: HashSet<u64>,
}
