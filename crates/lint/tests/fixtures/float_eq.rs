// Fixture: TL003 must fire on exact float comparisons but not on
// integer comparisons.
pub fn bad_literal(x: f64) -> bool {
    x == 0.5 // hit: TL003
}

pub fn bad_nan(x: f64) -> bool {
    x != f64::NAN // hit: TL003
}

pub fn fine_integers(n: u64) -> bool {
    n == 10
}
