// Fixture: a suppression without a reason is rejected (TL007) and the
// underlying diagnostic still fires (TL001).
use std::time::Instant;

pub fn timed() -> Instant {
    // trim-lint: allow(no-wall-clock)
    Instant::now()
}
