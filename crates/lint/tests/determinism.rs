//! Output determinism: the whole point of the tool is policing
//! reproducibility, so its own reports must be byte-reproducible.
//! Two independent semantic runs over the real workspace — fresh file
//! walk, fresh symbol table, fresh fixed-point — must render identical
//! JSON, and the call-graph dump identical bytes.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has two ancestors")
        .to_path_buf()
}

#[test]
fn semantic_json_and_callgraph_are_byte_identical_across_runs() {
    let root = workspace_root();
    let cfg = trim_lint::load_config(&root).expect("Lint.toml parses");
    let (r1, a1) = trim_lint::run_semantic(&root, &cfg).expect("first run");
    let (r2, a2) = trim_lint::run_semantic(&root, &cfg).expect("second run");
    assert_eq!(
        trim_lint::diag::render_json(&r1.diagnostics, r1.files_scanned),
        trim_lint::diag::render_json(&r2.diagnostics, r2.files_scanned),
        "semantic JSON report is not reproducible"
    );
    let cg1 = a1.render_callgraph();
    let cg2 = a2.render_callgraph();
    assert_eq!(cg1, cg2, "call-graph dump is not reproducible");
    // The dump is non-trivial: it actually contains the workspace.
    assert!(cg1.contains("\"version\": 1"));
    assert!(cg1.contains("netsim::"), "call graph misses the sim crates");
}

#[test]
fn source_mode_json_is_byte_identical_across_runs() {
    let root = workspace_root();
    let cfg = trim_lint::load_config(&root).expect("Lint.toml parses");
    let r1 = trim_lint::run_workspace(&root, &cfg).expect("first run");
    let r2 = trim_lint::run_workspace(&root, &cfg).expect("second run");
    assert_eq!(
        trim_lint::diag::render_json(&r1.diagnostics, r1.files_scanned),
        trim_lint::diag::render_json(&r2.diagnostics, r2.files_scanned)
    );
}
