//! Per-rule fixture tests: each bad fixture must produce exactly the
//! expected diagnostic codes, each clean one must stay silent, and the
//! suppression machinery must accept reasoned annotations and reject
//! bare ones. Fixtures live under `tests/fixtures/` and are excluded
//! from the workspace scan by `Lint.toml`.

use std::path::Path;

use trim_lint::config::Config;
use trim_lint::context::SourceFile;
use trim_lint::rules::check_file;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lints a fixture as if it lived at `rel_path`, under the default
/// (everything-applies) config, returning the sorted diagnostic codes.
fn codes_at(name: &str, rel_path: &str) -> Vec<&'static str> {
    let mut f = SourceFile::analyze(rel_path, fixture(name));
    let mut codes: Vec<_> = check_file(&mut f, &Config::default())
        .into_iter()
        .map(|d| d.code)
        .collect();
    codes.sort_unstable();
    codes
}

#[test]
fn wall_clock_fixture_hits_on_every_mention() {
    // Instant::now() once; SystemTime at the import, the call, and the
    // return type — mentions in the comment and string stay silent.
    assert_eq!(
        codes_at("wall_clock.rs", "crates/netsim/src/fixture.rs"),
        ["TL001", "TL001", "TL001", "TL001"]
    );
}

#[test]
fn wall_clock_fixture_quiet_on_allowlisted_path() {
    let cfg = Config::parse("[no-wall-clock]\nallow-paths = [\"crates/harness\"]\n").unwrap();
    let mut f = SourceFile::analyze("crates/harness/src/fixture.rs", fixture("wall_clock.rs"));
    assert!(check_file(&mut f, &cfg).is_empty());
}

#[test]
fn unordered_fixture_hits_on_sim_path_only() {
    // Default config: the rule applies everywhere — import + 2 uses.
    assert_eq!(
        codes_at("unordered.rs", "crates/netsim/src/fixture.rs"),
        ["TL002", "TL002", "TL002", "TL002"]
    );
    // Scoped config: driver paths are exempt.
    let cfg =
        Config::parse("[no-unordered-iteration]\napply-paths = [\"crates/netsim\"]\n").unwrap();
    let mut f = SourceFile::analyze("crates/harness/src/fixture.rs", fixture("unordered.rs"));
    assert!(check_file(&mut f, &cfg).is_empty());
}

#[test]
fn float_eq_fixture_hits_twice() {
    assert_eq!(
        codes_at("float_eq.rs", "crates/core/src/fixture.rs"),
        ["TL003", "TL003"]
    );
}

#[test]
fn panics_fixture_hits_in_lib_spares_tests_and_bins() {
    assert_eq!(
        codes_at("panics.rs", "crates/core/src/fixture.rs"),
        ["TL004", "TL004", "TL004"]
    );
    assert!(codes_at("panics.rs", "crates/core/tests/fixture.rs").is_empty());
    assert!(codes_at("panics.rs", "crates/core/src/bin/fixture.rs").is_empty());
}

#[test]
fn raw_literal_fixture_hits_once() {
    assert_eq!(
        codes_at("raw_literal.rs", "crates/netsim/src/fixture.rs"),
        ["TL005"]
    );
}

#[test]
fn missing_forbid_fires_only_at_crate_roots() {
    assert_eq!(
        codes_at("no_forbid_root.rs", "crates/core/src/lib.rs"),
        ["TL006"]
    );
    assert!(codes_at("no_forbid_root.rs", "crates/core/src/other.rs").is_empty());
}

#[test]
fn reasoned_suppression_silences_and_counts_as_used() {
    assert!(codes_at("suppress_ok.rs", "crates/netsim/src/fixture.rs").is_empty());
}

#[test]
fn bare_suppression_rejected_and_diagnostic_kept() {
    assert_eq!(
        codes_at("suppress_no_reason.rs", "crates/netsim/src/fixture.rs"),
        ["TL001", "TL007"]
    );
}

#[test]
fn stale_suppression_is_its_own_finding() {
    assert_eq!(
        codes_at("unused_suppress.rs", "crates/netsim/src/fixture.rs"),
        ["TL008"]
    );
}

#[test]
fn clean_fixture_is_silent_everywhere() {
    assert!(codes_at("clean.rs", "crates/netsim/src/fixture.rs").is_empty());
    assert!(codes_at("clean.rs", "crates/tcp/src/fixture.rs").is_empty());
    // As a crate root the same text still needs forbid(unsafe_code).
    assert_eq!(codes_at("clean.rs", "crates/core/src/lib.rs"), ["TL006"]);
}

#[test]
fn json_output_is_stable_and_parseable_shape() {
    let mut f = SourceFile::analyze(
        "crates/netsim/src/fixture.rs",
        fixture("suppress_no_reason.rs"),
    );
    let mut diags = check_file(&mut f, &Config::default());
    trim_lint::diag::sort(&mut diags);
    let json = trim_lint::diag::render_json(&diags, 1);
    // Versioned schema with the fields CI consumers rely on (v2 added
    // the per-diagnostic `severity`).
    assert!(json.contains("\"version\": 2"), "{json}");
    assert!(json.contains("\"code\": \"TL001\""), "{json}");
    assert!(json.contains("\"code\": \"TL007\""), "{json}");
    assert!(json.contains("\"severity\": \"deny\""), "{json}");
    assert!(
        json.contains("\"summary\": {\"files\": 1, \"diagnostics\": 2}"),
        "{json}"
    );
    // Rendering twice is byte-identical (deterministic output).
    assert_eq!(json, trim_lint::diag::render_json(&diags, 1));
}
