//! Semantic-rule fixture tests: each TL2xx rule has a firing case in
//! the `semantic_bad` mini-workspace and a clean (or suppressed) case
//! in `semantic_clean`. The fixtures are self-contained workspaces
//! (own `Lint.toml`, own crate manifests) so the call-graph and taint
//! machinery runs exactly as it does on the real tree.

use std::path::PathBuf;

use trim_lint::diag::Severity;

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(name: &str) -> trim_lint::Report {
    let root = fixture_root(name);
    let cfg = trim_lint::load_config(&root).expect("fixture Lint.toml parses");
    trim_lint::run_semantic(&root, &cfg)
        .expect("semantic run succeeds")
        .0
}

#[test]
fn bad_workspace_fires_every_semantic_rule() {
    let report = run("semantic_bad");
    let count = |code: &str| report.diagnostics.iter().filter(|d| d.code == code).count();
    // TL201: sim::step reaches Instant::now only through util::wall_now.
    assert_eq!(count("TL201"), 1, "diags: {:#?}", report.diagnostics);
    // TL202: sim::tally reaches HashMap only through util::count_keys.
    assert_eq!(count("TL202"), 1, "diags: {:#?}", report.diagnostics);
    // TL203: static mut, Atomic* static, thread_local!, Rc, RefCell, Cell.
    assert_eq!(count("TL203"), 6, "diags: {:#?}", report.diagnostics);
    // TL204: one transitive (reseed -> entropy_seed) + one direct (OsRng).
    assert_eq!(count("TL204"), 2, "diags: {:#?}", report.diagnostics);
    // TL205: Orphaned never consumed, Phantom never emitted.
    assert_eq!(count("TL205"), 2, "diags: {:#?}", report.diagnostics);
    // TL008: the stale transitive-unordered-iteration suppression.
    assert_eq!(count("TL008"), 1, "diags: {:#?}", report.diagnostics);
    assert_eq!(report.diagnostics.len(), 13);
}

#[test]
fn bad_workspace_diagnostics_name_the_frontier() {
    let report = run("semantic_bad");
    let tl201 = report
        .diagnostics
        .iter()
        .find(|d| d.code == "TL201")
        .expect("TL201 present");
    assert_eq!(tl201.path, "crates/sim/src/lib.rs");
    // The taint chain must name both the frontier callee and the
    // ultimate source so the report is actionable without re-tracing.
    assert!(
        tl201.message.contains("wall_now"),
        "chain names the callee: {}",
        tl201.message
    );
    assert!(
        tl201.message.contains("crates/util/src/lib.rs"),
        "chain names the source file: {}",
        tl201.message
    );
}

#[test]
fn per_rule_severity_warn_is_applied() {
    let report = run("semantic_bad");
    for d in &report.diagnostics {
        let expect = if d.code == "TL204" {
            // `[unseeded-randomness] severity = "warn"` in the fixture
            // Lint.toml.
            Severity::Warn
        } else {
            Severity::Deny
        };
        assert_eq!(d.severity, expect, "severity of {} {}", d.code, d.path);
    }
}

#[test]
fn shard_safety_audit_skips_test_regions() {
    let report = run("semantic_bad");
    // state.rs has a RefCell inside #[cfg(test)]; only the six
    // non-test sites may be reported.
    for d in report.diagnostics.iter().filter(|d| d.code == "TL203") {
        assert_eq!(d.path, "crates/sim/src/state.rs");
        assert!(
            !d.message.contains("test"),
            "test-region site leaked: {d:?}"
        );
    }
}

#[test]
fn clean_workspace_is_clean_including_used_suppressions() {
    let report = run("semantic_clean");
    assert!(
        report.diagnostics.is_empty(),
        "expected no diagnostics, got: {:#?}",
        report.diagnostics
    );
}
