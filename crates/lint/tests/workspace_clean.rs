//! The self-test the whole PR hangs on: the real workspace, under the
//! real `Lint.toml`, is clean in both modes. A regression anywhere in
//! the repo — a stray `Instant::now`, an undocumented experiment, an
//! orphaned results CSV, a corpus spec that stops round-tripping —
//! fails this test without running a single simulation.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/lint/ -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has two ancestors")
        .to_path_buf()
}

#[test]
fn source_rules_pass_on_the_workspace() {
    let root = workspace_root();
    let cfg = trim_lint::load_config(&root).expect("Lint.toml parses");
    let report = trim_lint::run_workspace(&root, &cfg).expect("scan succeeds");
    assert!(
        report.files_scanned > 100,
        "scan saw only {} files — walker is broken",
        report.files_scanned
    );
    assert!(
        report.diagnostics.is_empty(),
        "workspace must lint clean:\n{}",
        trim_lint::diag::render_text(&report.diagnostics, report.files_scanned)
    );
}

#[test]
fn semantic_rules_pass_on_the_workspace() {
    let root = workspace_root();
    let cfg = trim_lint::load_config(&root).expect("Lint.toml parses");
    let (report, analysis) = trim_lint::run_semantic(&root, &cfg).expect("semantic run succeeds");
    assert!(
        report.diagnostics.is_empty(),
        "workspace must pass the semantic audit:\n{}",
        trim_lint::diag::render_text(&report.diagnostics, report.files_scanned)
    );
    // The clean result is not vacuous: the call graph actually spans
    // the workspace and taint actually exists outside the sim crates.
    let labels = analysis.taint_labels();
    let tainted = labels.iter().filter(|l| !l.is_empty()).count();
    assert!(
        tainted > 20,
        "only {tainted} tainted fns — taint seeding looks broken"
    );
}

#[test]
fn artifact_cross_checks_pass_on_the_workspace() {
    let root = workspace_root();
    let report = trim_lint::run_artifacts(&root).expect("artifact check runs");
    assert!(
        report.diagnostics.is_empty(),
        "artifacts must cross-check clean:\n{}",
        trim_lint::diag::render_text(&report.diagnostics, 0)
    );
}

#[test]
fn lint_toml_is_valid_and_scopes_the_expected_rules() {
    let root = workspace_root();
    let cfg = trim_lint::load_config(&root).expect("Lint.toml parses");
    // The determinism rules stay scoped to simulation paths.
    assert!(cfg.rule_applies("no-wall-clock", "crates/netsim/src/sim.rs"));
    assert!(!cfg.rule_applies("no-wall-clock", "crates/harness/src/engine.rs"));
    assert!(cfg.rule_applies("no-unordered-iteration", "crates/check/src/monitors.rs"));
    assert!(!cfg.rule_applies("no-unordered-iteration", "crates/netsim/src/hash.rs"));
    assert!(!cfg.rule_applies("no-panic-in-library", "crates/harness/src/engine.rs"));
    assert!(cfg.rule_applies("no-panic-in-library", "crates/tcp/src/conn.rs"));
    // Fixtures are excluded from the scan.
    assert!(cfg.is_excluded("crates/lint/tests/fixtures/wall_clock.rs"));
}
