//! End-to-end validation of the Section II.A methodology on simulated
//! traffic: the packet-train extractor applied to the simulator's
//! delivered-packet trace recovers exactly the trains the application
//! sent.

use netsim::FlowId;
use tcp_trim::prelude::*;
use tcp_trim::workload::trace::{extract_trains, packets_from_events, train_intervals};

#[test]
fn extracted_trains_match_the_application_schedule() {
    let mut sc = ScenarioBuilder::many_to_one(1).trim().build();
    // Five trains with distinct sizes, 5 ms apart: far beyond the RTT, so
    // the extractor's smoothed-RTT-scale threshold separates them.
    let sizes = [4_000u64, 20_000, 60_000, 8_000, 30_000];
    for (i, &bytes) in sizes.iter().enumerate() {
        sc.send_train(0, TrainSpec::at_secs(0.01 + i as f64 * 0.005, bytes));
    }
    sc.sim_mut().enable_packet_trace(100_000);
    let report = sc.run_for_secs(1.0);
    assert_eq!(report.completed_trains(), sizes.len());
    assert_eq!(report.total_timeouts(), 0, "clean network");

    let trace = sc.sim_mut().packet_trace().cloned().expect("enabled");
    assert!(!trace.is_truncated());
    assert_eq!(trace.dropped_events(), 0, "capacity 100k was never hit");
    // Data packets are MSS-sized; ACKs (40 B) are filtered out.
    let pkts = packets_from_events(trace.events(), FlowId(0), 1000);
    let expected_pkts: u64 = sizes.iter().map(|b| b.div_ceil(1460)).sum();
    assert_eq!(pkts.len() as u64, expected_pkts, "no loss, no duplicates");

    // Gap threshold of 1 ms (>> intra-train spacing, << 5 ms schedule).
    let trains = extract_trains(&pkts, Dur::from_millis(1));
    assert_eq!(
        trains.len(),
        sizes.len(),
        "one extracted train per response"
    );
    for (t, &bytes) in trains.iter().zip(&sizes) {
        assert_eq!(t.pkts, bytes.div_ceil(1460), "train size recovered");
    }
    // Inter-train gaps reflect the 5 ms schedule minus transfer time.
    for gap in train_intervals(&trains) {
        assert!(gap <= Dur::from_millis(5));
        assert!(gap >= Dur::from_millis(1));
    }
}

#[test]
fn trace_overflow_counts_every_dropped_event() {
    let run = |cap: usize| {
        let mut sc = ScenarioBuilder::many_to_one(2).build();
        sc.send_train(0, TrainSpec::at_secs(0.001, 100_000));
        sc.send_train(1, TrainSpec::at_secs(0.001, 100_000));
        sc.sim_mut().enable_packet_trace(cap);
        sc.run_for_secs(1.0);
        sc.sim_mut().packet_trace().cloned().expect("enabled")
    };
    let full = run(1_000_000);
    assert!(!full.is_truncated());
    assert_eq!(full.dropped_events(), 0);

    // The identical (deterministic) run with a tiny buffer: the counter
    // accounts for exactly the events that no longer fit.
    let capped = run(50);
    assert!(capped.is_truncated());
    assert_eq!(capped.events().len(), 50);
    assert_eq!(
        capped.events().len() as u64 + capped.dropped_events(),
        full.events().len() as u64,
        "dropped_events counts, not just flags, the overflow"
    );
}

#[test]
fn drops_show_up_in_the_packet_trace() {
    use netsim::PacketEventKind;
    let mut sc = ScenarioBuilder::many_to_one(8).build(); // Reno
    for s in 0..8 {
        sc.send_train(s, TrainSpec::at_secs(0.001, 300_000));
    }
    sc.sim_mut().enable_packet_trace(2_000_000);
    let report = sc.run_for_secs(5.0);
    let trace = sc.sim_mut().packet_trace().cloned().expect("enabled");
    let dropped = trace
        .events()
        .iter()
        .filter(|e| matches!(e.kind, PacketEventKind::Dropped { .. }))
        .count() as u64;
    assert_eq!(
        dropped, report.bottleneck.dropped,
        "trace and queue stats agree on losses"
    );
    assert!(dropped > 0, "8-way incast must overflow");
}
