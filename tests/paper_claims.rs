//! Integration tests of the paper's headline claims through the public
//! facade: each test exercises the full stack (workload -> TCP -> switch
//! queues -> metrics) end to end.

use tcp_trim::core::{kmodel, Trim, TrimConfig, WindowAction};
use tcp_trim::prelude::*;

/// Section II.B: blind window inheritance causes timeouts; Section IV.A:
/// TCP-TRIM removes them and bounds the queue below 20 packets.
#[test]
fn impairment_reproduces_fig4_and_fig6() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tcp_trim::workload::http::impairment_workload;

    let run = |cc: CcKind| {
        let mut sc = ScenarioBuilder::many_to_one(5)
            .congestion_control(cc)
            .record_cwnd()
            .build();
        let mut rng = StdRng::seed_from_u64(42);
        for s in 0..5 {
            sc.send_trains(s, impairment_workload(&mut rng));
        }
        sc.run_for_secs(3.0)
    };
    let reno = run(CcKind::Reno);
    let trim = run(CcKind::trim_with_capacity(1_000_000_000, 1460));

    // Fig. 4: Reno inherits ~900-packet windows and hits timeouts.
    assert!(reno.total_timeouts() >= 2);
    let reno_peak_cwnd = reno.senders[4]
        .cwnd
        .as_ref()
        .and_then(|s| s.value_at(SimTime::from_secs_f64(0.499)))
        .expect("recorded");
    assert!(
        reno_peak_cwnd > 500.0,
        "paper: window close to 900, got {reno_peak_cwnd}"
    );

    // Fig. 6: TRIM never times out, never drops, queue stays under ~20.
    assert_eq!(trim.total_timeouts(), 0);
    assert_eq!(trim.bottleneck.dropped, 0);
    assert!(
        trim.bottleneck.max_len <= 25,
        "queue {}",
        trim.bottleneck.max_len
    );
    let trim_peak_cwnd = trim.senders[4]
        .cwnd
        .as_ref()
        .and_then(|s| s.value_at(SimTime::from_secs_f64(0.499)))
        .expect("recorded");
    assert!(
        trim_peak_cwnd <= 20.0,
        "paper: window never exceeds 20, got {trim_peak_cwnd}"
    );

    // Headline: up to 80% reduction in completion time; here the LPT
    // completion shrinks from RTO-scale to milliseconds.
    let lpt_ct = |r: &tcp_trim::workload::Report| {
        r.senders
            .iter()
            .flat_map(|s| s.trains.iter().filter(|t| t.id == 200))
            .map(|t| t.completion_time().as_secs_f64())
            .fold(0.0f64, f64::max)
    };
    let (reno_lpt, trim_lpt) = (lpt_ct(&reno), lpt_ct(&trim));
    assert!(
        trim_lpt < 0.2 * reno_lpt,
        "LPT completion: trim {trim_lpt}s vs reno {reno_lpt}s"
    );
}

/// The abstract's claim: "reduces the completion time of HTTP response by
/// up to 80%" — measured on the concurrent-SPT scenario (Fig. 7).
#[test]
fn trim_reduces_act_by_up_to_80_percent() {
    let run = |cc: CcKind| {
        let mut sc = ScenarioBuilder::many_to_one(8)
            .congestion_control(cc)
            .build();
        // Two long trains plus six short bursts from warmed-up senders.
        sc.send_train(0, TrainSpec::at_secs(0.1, 20_000_000));
        sc.send_train(1, TrainSpec::at_secs(0.1, 20_000_000));
        for s in 2..8 {
            for k in 0..50 {
                sc.send_train(s, TrainSpec::at_secs(0.1 + k as f64 * 0.004, 6_000));
            }
            sc.send_train(s, TrainSpec::at_secs(0.3, 15_000));
        }
        let report = sc.run_for_secs(3.0);
        let times: Vec<_> = report
            .senders
            .iter()
            .skip(2)
            .flat_map(|s| {
                s.trains
                    .iter()
                    .filter(|t| t.id == 50)
                    .map(|t| t.completion_time())
            })
            .collect();
        assert_eq!(times.len(), 6, "every measured SPT completes");
        tcp_trim::workload::Summary::of(&times).mean
    };
    let tcp_act = run(CcKind::Reno);
    let trim_act = run(CcKind::trim_with_capacity(1_000_000_000, 1460));
    assert!(
        trim_act < 0.5 * tcp_act,
        "trim {trim_act}s vs tcp {tcp_act}s"
    );
}

/// The K guideline (Eq. 22) taken from a live connection matches the
/// analytical model, and the simulated queue respects the model's target.
#[test]
fn live_k_matches_model_and_queue_respects_target() {
    let cfg = TrimConfig::default().with_capacity(1_000_000_000, 1460);
    let mut sc = ScenarioBuilder::many_to_one(5)
        .congestion_control(CcKind::Trim(cfg))
        .build();
    for s in 0..5 {
        sc.send_train(s, TrainSpec::at_secs(0.1, 10_000_000));
    }
    let report = sc.run_for_secs(2.0);
    assert_eq!(report.completed_trains(), 5);
    assert_eq!(report.bottleneck.dropped, 0);

    // Reconstruct the model at the topology's base RTT. The many-to-one
    // default is 1 Gbps / 50 us per link, two hops each way.
    let c = 1e9 / (1460.0 * 8.0);
    let d = 224_000; // ns, measured base RTT of the default topology
    let k = kmodel::k_lower_bound_ns(c, d);
    let st = kmodel::steady_state(c, d, k, 5);
    // The observed peak queue stays within the same regime as the model's
    // peak (allowing the margin-floored K and slow-start transients).
    assert!(
        (report.bottleneck.max_len as f64) < 4.0 * st.max_queue + 20.0,
        "observed {} vs model peak {}",
        report.bottleneck.max_len,
        st.max_queue
    );
}

/// The pure algorithm and the simulated connection agree on probing: a
/// standalone `Trim` fed the same gap produces the same decision the
/// in-simulator controller acted on.
#[test]
fn pure_state_machine_agrees_with_simulation() {
    // Pure run.
    let cfg = TrimConfig::default().with_capacity(1_000_000_000, 1460);
    let mut pure = Trim::new(cfg).expect("valid");
    pure.on_ack(0, 224_000, false);
    pure.note_sent(300_000);
    let decision = pure.on_send_attempt(10_000_000, 40.0);
    assert!(matches!(
        decision,
        tcp_trim::core::SendDecision::StartProbe { .. }
    ));
    pure.begin_probe(40.0, 2);
    let a1 = pure.on_ack(10_300_000, 230_000, true);
    assert_eq!(a1, WindowAction::None);
    let a2 = pure.on_ack(10_400_000, 230_000, true);
    match a2 {
        WindowAction::SetAndResume(w) => assert!(w > 2.0 && w <= 40.0),
        other => panic!("unexpected {other:?}"),
    }

    // Simulated run with the same shape: two trains a long gap apart.
    let mut sc = ScenarioBuilder::many_to_one(1)
        .congestion_control(CcKind::Trim(cfg))
        .build();
    sc.send_train(0, TrainSpec::at_secs(0.01, 60_000));
    sc.send_train(0, TrainSpec::at_secs(0.11, 60_000));
    let report = sc.run_for_secs(1.0);
    let stats = report.senders[0].stats;
    assert!(
        stats.probes_sent >= 2,
        "the second train must be probed: {stats:?}"
    );
    assert_eq!(stats.timeouts, 0);
    assert_eq!(report.completed_trains(), 2);
}

/// Determinism across the full stack: identical seeds give identical
/// reports.
#[test]
fn full_stack_runs_are_deterministic() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tcp_trim::workload::http::impairment_workload;

    let run = || {
        let mut sc = ScenarioBuilder::many_to_one(3)
            .congestion_control(CcKind::trim_with_capacity(1_000_000_000, 1460))
            .build();
        let mut rng = StdRng::seed_from_u64(7);
        for s in 0..3 {
            sc.send_trains(s, impairment_workload(&mut rng));
        }
        let r = sc.run_for_secs(2.0);
        (
            r.completed_trains(),
            r.total_timeouts(),
            r.bottleneck.enqueued,
            r.bottleneck.max_len,
            (r.act().mean * 1e12) as u64,
        )
    };
    assert_eq!(run(), run());
}
