//! Metamorphic and invariant-monitor properties of the full stack:
//! determinism, observe-only monitoring, bandwidth/delay
//! scale-invariance, and end-to-end fault detection.

use netsim::topology::LinkSpec;
use tcp_trim::prelude::*;

/// A digest of everything a run produced that a perturbation could
/// plausibly disturb: completion times, retransmission behavior, and
/// bottleneck-queue history.
fn run_digest(mut sc: tcp_trim::workload::scenario::Scenario, secs: f64) -> String {
    let report = sc.run_for_secs(secs);
    format!(
        "ct={:?} timeouts={} queue={:?}",
        report.completion_times(),
        report.total_timeouts(),
        report.bottleneck
    )
}

fn incast(senders: usize, trim: bool) -> tcp_trim::workload::scenario::Scenario {
    let mut b = ScenarioBuilder::many_to_one(senders);
    if trim {
        b = b.trim();
    }
    let mut sc = b.build();
    for s in 0..senders {
        sc.send_train(s, TrainSpec::at_secs(0.001, 250_000));
    }
    sc
}

/// Same seed, same topology, same schedule: the simulation is a pure
/// function of its inputs, across topology sizes and both CC policies.
#[test]
fn same_inputs_reproduce_identical_runs_across_topologies() {
    for &senders in &[1usize, 4, 8] {
        for &trim in &[false, true] {
            let a = run_digest(incast(senders, trim), 5.0);
            let b = run_digest(incast(senders, trim), 5.0);
            assert_eq!(a, b, "n={senders} trim={trim} diverged across reruns");
        }
    }
}

/// Monitoring is strictly observe-only: attaching the full standard
/// monitor set (on top of whatever the build profile already attached)
/// leaves every measurable output bit-identical.
#[test]
fn attached_monitors_never_perturb_the_simulation() {
    let baseline = run_digest(incast(8, true), 5.0);
    let mut sc = incast(8, true);
    trim_check::attach_standard(sc.sim_mut());
    assert!(sc.sim_mut().monitors_enabled());
    let monitored = run_digest(sc, 5.0);
    assert_eq!(baseline, monitored, "monitors perturbed the event stream");
}

/// Scaling bandwidth up and propagation delay down by the same factor
/// leaves the bandwidth-delay product (and hence the whole congestion
/// dynamic, measured in packets) unchanged; completion times contract
/// by that factor. TRIM keeps the runs loss-free, so no non-scaling
/// constant (min-RTO) enters the picture.
#[test]
fn bandwidth_delay_rescaling_contracts_completion_times() {
    let base = incast(8, true);
    let scale = 2u64;
    let scaled_link = LinkSpec::new(
        Bandwidth::gbps(scale),
        Dur::from_micros(50 / scale),
        QueueConfig::drop_tail(100),
    );
    let mut scaled = ScenarioBuilder::many_to_one(8)
        .links(scaled_link)
        .trim()
        .build();
    for s in 0..8 {
        // The schedule offset must contract with time as well.
        scaled.send_train(s, TrainSpec::at_secs(0.001 / scale as f64, 250_000));
    }
    let mut base = base;
    let r_base = base.run_for_secs(5.0);
    let r_scaled = scaled.run_for_secs(5.0);
    assert_eq!(r_base.total_timeouts(), 0, "base run must be loss-free");
    assert_eq!(r_scaled.total_timeouts(), 0, "scaled run must be loss-free");
    let cts_base = r_base.completion_times();
    let cts_scaled = r_scaled.completion_times();
    assert_eq!(cts_base.len(), 8);
    assert_eq!(cts_scaled.len(), 8);
    for (i, (b, s)) in cts_base.iter().zip(&cts_scaled).enumerate() {
        // ct counts from t=0, schedule offset included; both scale.
        let expect = b.as_nanos() as f64 / scale as f64;
        let got = s.as_nanos() as f64;
        let rel = (got - expect).abs() / expect;
        assert!(
            rel < 0.02,
            "sender {i}: base={b:?} scaled={s:?} (rel err {rel:.4})"
        );
    }
}

/// An incast over an explicit bottleneck queue configuration, same
/// link rate/delay/schedule as [`incast`] but with Reno senders so the
/// AQM drop paths are actually exercised.
fn aqm_incast(senders: usize, queue: QueueConfig) -> tcp_trim::workload::scenario::Scenario {
    let link = LinkSpec::new(Bandwidth::gbps(1), Dur::from_micros(50), queue);
    let mut sc = ScenarioBuilder::many_to_one(senders).links(link).build();
    for s in 0..senders {
        sc.send_train(s, TrainSpec::at_secs(0.001, 250_000));
    }
    sc
}

/// [`run_digest`] without the no-violations assertion, for runs where
/// the stability oracles are *expected* to report (a tiny-buffer Reno
/// incast oscillates by design — that is data, not a bug).
fn run_digest_unchecked(mut sc: tcp_trim::workload::scenario::Scenario, secs: f64) -> String {
    sc.sim_mut().run_until(SimTime::from_secs_f64(secs));
    let report = sc.report_unchecked();
    format!(
        "ct={:?} timeouts={} queue={:?}",
        report.completion_times(),
        report.total_timeouts(),
        report.bottleneck
    )
}

/// Observe-only monitoring extends to the AQM disciplines: attaching
/// the full standard set *plus* the stability oracle family on top of a
/// RED or CoDel bottleneck leaves every measurable output — including
/// the early-drop and sojourn-drop counters — bit-identical.
#[test]
fn attached_monitors_never_perturb_aqm_simulations() {
    let red = QueueConfig::drop_tail(16).with_red(RedConfig {
        min_th: 4.0,
        max_th: 12.0,
        ..RedConfig::default()
    });
    let codel = QueueConfig::drop_tail(16).with_codel(CoDelConfig::datacenter());
    for queue in [red, codel] {
        let baseline = run_digest_unchecked(aqm_incast(8, queue), 5.0);
        let mut sc = aqm_incast(8, queue);
        trim_check::attach_standard(sc.sim_mut());
        for m in trim_check::stability_monitors(trim_check::StabilityConfig::default()) {
            sc.sim_mut().attach_monitor(m);
        }
        assert!(sc.sim_mut().monitors_enabled());
        let monitored = run_digest_unchecked(sc, 5.0);
        assert_eq!(
            baseline, monitored,
            "monitors perturbed the AQM event stream ({queue:?})"
        );
    }
}

/// RED with both thresholds above the physical buffer can never reach
/// its early-drop region (the average is an EWMA of occupancies capped
/// by the buffer), so the queue must degenerate to drop-tail exactly:
/// same completion times, same timeouts, same queue history.
#[test]
fn red_with_thresholds_above_buffer_reproduces_drop_tail() {
    let buffer = 32;
    let drop_tail = run_digest(aqm_incast(8, QueueConfig::drop_tail(buffer)), 5.0);
    let inert_red = QueueConfig::drop_tail(buffer).with_red(RedConfig {
        min_th: 2.0 * buffer as f64,
        max_th: 4.0 * buffer as f64,
        ..RedConfig::default()
    });
    let red = run_digest(aqm_incast(8, inert_red), 5.0);
    assert_eq!(drop_tail, red, "inert RED diverged from drop-tail");
}

/// The stability oracle family is quiet on a healthy converged run:
/// TRIM over the standard drop-tail incast keeps the queue bounded and
/// the windows monotone, so neither the limit-cycle nor the
/// standing-queue detector may fire.
#[test]
fn stability_oracles_stay_silent_on_healthy_runs() {
    let mut sc = incast(8, true);
    for m in trim_check::stability_monitors(trim_check::StabilityConfig::default()) {
        sc.sim_mut().attach_monitor(m);
    }
    sc.sim_mut().run_until(SimTime::from_secs(5));
    sc.sim_mut().assert_no_violations();
}

/// The full monitor set is clean on a healthy run and catches a
/// deliberately injected queue over-admission, attributing it to a
/// simulation time and flow.
#[test]
fn standard_monitors_pass_clean_runs_and_catch_injected_faults() {
    // Clean run: zero violations under the full set.
    let mut sc = incast(8, false);
    trim_check::attach_standard(sc.sim_mut());
    sc.sim_mut().run_until(SimTime::from_secs(5));
    sc.sim_mut().assert_no_violations();

    // Faulty run: the queue admits 4 packets over capacity.
    let mut sc = incast(8, false);
    trim_check::attach_standard(sc.sim_mut());
    let bottleneck = sc.net().bottleneck;
    sc.sim_mut().inject_queue_overadmit(bottleneck, 4);
    sc.sim_mut().run_until(SimTime::from_secs(5));
    let violations = sc.sim_mut().violations();
    let v = violations
        .iter()
        .find(|v| v.monitor == "queue-bound")
        .expect("over-admission must be caught");
    assert!(v.at.as_nanos() > 0, "violation carries a simulation time");
    assert!(v.flow.is_some(), "violation carries the offending flow");
    assert!(v.detail.contains("exceeds cap"), "detail names the bound");
}
