//! Cross-crate integration: wiring TCP flows over arbitrary `netsim`
//! topologies with the `trim-workload` helpers, the response-sequence and
//! scheduled-stop application models, and protocol interop.

use netsim::prelude::*;
use netsim::time::SimTime;
use netsim::topology::{self, LinkSpec};
use tcp_trim::tcp::{CcKind, Segment, TcpConfig, TcpHost};
use tcp_trim::workload::scenario::{schedule_train, wire_flow, TrainSpec};

fn gbit_link(buffer: usize) -> LinkSpec {
    LinkSpec::new(
        Bandwidth::gbps(1),
        Dur::from_micros(20),
        QueueConfig::drop_tail(buffer),
    )
}

/// TCP flows over the two-tier topology reach the front-end and complete.
#[test]
fn two_tier_topology_carries_tcp() {
    let mut sim: Simulator<Segment> = Simulator::new();
    let net = topology::two_tier(
        &mut sim,
        3,
        4,
        gbit_link(100),
        gbit_link(100),
        LinkSpec::new(
            Bandwidth::gbps(10),
            Dur::from_micros(10),
            QueueConfig::drop_tail(250),
        ),
        |_| Box::new(TcpHost::new()),
    );
    for (i, &server) in net.all_servers.iter().enumerate() {
        let idx = wire_flow(
            &mut sim,
            FlowId(i as u64),
            server,
            net.front_end,
            TcpConfig::default(),
            &CcKind::trim_with_capacity(10_000_000_000, 1460),
        );
        schedule_train(&mut sim, server, idx, TrainSpec::at_secs(0.001, 200_000));
    }
    sim.run_until(SimTime::from_secs(2));
    for &server in &net.all_servers {
        let host: &TcpHost = sim.host(server);
        assert!(host.connection(0).is_idle(), "transfer incomplete");
        assert_eq!(host.connection(0).completed_trains().len(), 1);
    }
}

/// Mixed protocols share a fat-tree without interfering with delivery.
#[test]
fn fat_tree_carries_mixed_protocols() {
    let mut sim: Simulator<Segment> = Simulator::new();
    let net = topology::fat_tree(
        &mut sim,
        4,
        LinkSpec::new(
            Bandwidth::gbps(10),
            Dur::from_micros(10),
            QueueConfig {
                capacity: QueueCapacity::Bytes(350_000),
                ecn_threshold: Some(65),
                aqm: netsim::queue::Aqm::DropTail,
            },
        ),
        |_| Box::new(TcpHost::new()),
    );
    let protos = [
        CcKind::Reno,
        CcKind::Cubic,
        CcKind::Dctcp,
        CcKind::L2dct,
        CcKind::trim_with_capacity(10_000_000_000, 1460),
    ];
    let n = net.hosts.len();
    for (i, &src) in net.hosts.iter().enumerate() {
        let dst = net.hosts[(i + n / 2) % n];
        let idx = wire_flow(
            &mut sim,
            FlowId(i as u64),
            src,
            dst,
            TcpConfig::default(),
            &protos[i % protos.len()],
        );
        schedule_train(&mut sim, src, idx, TrainSpec::at_secs(0.001, 500_000));
    }
    sim.run_until(SimTime::from_secs(3));
    for &src in &net.hosts {
        let host: &TcpHost = sim.host(src);
        assert!(
            host.connection(0).is_idle(),
            "{} did not finish",
            host.connection(0).cc_name()
        );
    }
}

/// The response-sequence application model: each response is handed to
/// TCP only after the previous one completes plus think time.
#[test]
fn response_sequences_serialize_responses() {
    let mut sim: Simulator<Segment> = Simulator::new();
    let sw = sim.add_switch();
    let mut rx = TcpHost::new();
    rx.add_receiver(FlowId(0), TcpConfig::default());
    let server = sim.add_host(Box::new(rx));
    let mut tx = TcpHost::new();
    let idx = tx.add_sender(FlowId(0), server, TcpConfig::default(), &CcKind::Reno);
    tx.schedule_response_sequence(
        idx,
        SimTime::from_secs_f64(0.01),
        vec![10_000, 20_000, 30_000],
        Dur::from_millis(5),
    );
    let client = sim.add_host(Box::new(tx));
    let l = gbit_link(100);
    sim.connect(client, sw, l.bandwidth, l.delay, l.queue);
    sim.connect(server, sw, l.bandwidth, l.delay, l.queue);
    sim.run_until(SimTime::from_secs(1));

    let host: &TcpHost = sim.host(client);
    let trains = host.connection(0).completed_trains();
    assert_eq!(trains.len(), 3);
    // Sequencing: each response is enqueued after the previous completed
    // plus the 5 ms think time.
    for w in trains.windows(2) {
        let gap = w[1].enqueued_at.saturating_since(w[0].completed_at);
        assert_eq!(gap, Dur::from_millis(5), "think time respected");
    }
    assert_eq!(trains[0].bytes, 10_000);
    assert_eq!(trains[2].bytes, 30_000);
}

/// Scheduled stops truncate unsent data but deliver what was in flight.
#[test]
fn scheduled_stop_truncates_cleanly() {
    let mut sim: Simulator<Segment> = Simulator::new();
    let sw = sim.add_switch();
    let mut rx = TcpHost::new();
    rx.add_receiver(FlowId(0), TcpConfig::default());
    let server = sim.add_host(Box::new(rx));
    let mut tx = TcpHost::new();
    let idx = tx.add_sender(FlowId(0), server, TcpConfig::default(), &CcKind::Reno);
    // 100 MB enqueued at t=0; stopped at 50 ms: only ~6 MB fit at 1 Gbps.
    tx.schedule_train(idx, SimTime::ZERO, 100_000_000);
    tx.schedule_stop(idx, SimTime::from_secs_f64(0.05));
    let client = sim.add_host(Box::new(tx));
    let l = gbit_link(100);
    sim.connect(client, sw, l.bandwidth, l.delay, l.queue);
    sim.connect(server, sw, l.bandwidth, l.delay, l.queue);
    sim.run_until(SimTime::from_secs(5));

    let host: &TcpHost = sim.host(client);
    let conn = host.connection(0);
    assert!(conn.is_idle(), "in-flight data drains after the stop");
    let trains = conn.completed_trains();
    assert_eq!(trains.len(), 1, "the truncated train still completes");
    assert!(
        trains[0].completed_at < SimTime::from_secs_f64(0.1),
        "no transmission continues after the stop: {}",
        trains[0].completed_at
    );
    let rx_host: &TcpHost = sim.host(server);
    let delivered = rx_host.receiver(0).goodput_bytes();
    assert!(delivered > 1_000_000, "some data was delivered");
    assert!(delivered < 20_000_000, "but nowhere near the full 100 MB");
}

/// ECN marks survive the full path: switch queue -> receiver echo ->
/// sender controller (DCTCP's control loop end to end).
#[test]
fn ecn_feedback_loop_closes() {
    let mut sim: Simulator<Segment> = Simulator::new();
    let sw = sim.add_switch();
    let mut rx = TcpHost::new();
    for i in 0..4 {
        rx.add_receiver(FlowId(i), TcpConfig::default());
    }
    let fe = sim.add_host(Box::new(rx));
    let qc = QueueConfig::drop_tail(100).with_ecn_threshold(10);
    let (_, bottleneck) = sim.connect(fe, sw, Bandwidth::gbps(1), Dur::from_micros(20), qc);
    let mut senders = Vec::new();
    for i in 0..4 {
        let mut tx = TcpHost::new();
        let idx = tx.add_sender(FlowId(i), fe, TcpConfig::default(), &CcKind::Dctcp);
        tx.schedule_train(idx, SimTime::ZERO, 3_000_000);
        let node = sim.add_host(Box::new(tx));
        sim.connect(node, sw, Bandwidth::gbps(1), Dur::from_micros(20), qc);
        senders.push(node);
    }
    sim.run_until(SimTime::from_secs(2));
    let stats = sim.queue_stats(bottleneck);
    assert!(stats.ecn_marked > 0, "switch marked packets");
    assert_eq!(stats.dropped, 0, "marking prevented drops");
    for &s in &senders {
        let host: &TcpHost = sim.host(s);
        assert!(host.connection(0).is_idle());
    }
}
